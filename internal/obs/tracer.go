package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives completed events from a Tracer. Implementations must be
// safe for use by a single Tracer (which serializes Emit calls); they do
// not need their own locking.
type Sink interface {
	// Emit records one event. The event is complete: Seq/Tick/Wall are
	// already assigned by the tracer.
	Emit(ev Event)
	// Close flushes and releases the sink. A tracer must not be used
	// after its sink is closed.
	Close() error
}

// Tracer assigns sequence numbers and logical timestamps to events and
// hands them to its sink. The nil *Tracer is the disabled tracer: every
// method on it is an allocation-free no-op, so instrumented structs hold
// a plain *Tracer field that defaults to "off".
//
// Concurrency: Emit is safe from any goroutine (the coordinator and all
// ParaSolvers share one tracer); SetTick is called by the single writer
// that owns the logical clock (the coordinator loop, or the sequential
// solver). Events emitted concurrently by different ranks interleave in
// Seq order under one mutex, so a trace is always totally ordered even
// when the emission order between ranks is scheduling-dependent.
type Tracer struct {
	mu    sync.Mutex
	sink  Sink
	seq   int64
	tick  atomic.Int64
	start time.Time

	// Causal mode (distributed runs only; see EnableCausal): every Emit
	// advances a Lamport clock and stamps the event with it plus the
	// endpoint's rank, and the transport weaves per-process clocks into
	// one happens-before order by piggybacking the clock on every data
	// frame (ClockSend on the sender, ClockRecv on the receiver). All
	// three fields are guarded by mu.
	causal bool
	orig   int
	clock  int64
}

// NewTracer creates a tracer writing to sink. A nil sink yields the
// disabled (nil) tracer.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now()}
}

// Enabled reports whether events are being recorded. Callers should
// guard expensive payload computation (anything beyond filling an Event
// struct) behind it.
func (t *Tracer) Enabled() bool { return t != nil }

// SetTick advances the logical clock. Ticks must be non-decreasing; the
// logical clock is owned by exactly one goroutine (coordinator loop or
// sequential solver), everything else only reads it through Emit.
func (t *Tracer) SetTick(tick int64) {
	if t == nil {
		return
	}
	t.tick.Store(tick)
}

// Tick returns the current logical time.
func (t *Tracer) Tick() int64 {
	if t == nil {
		return 0
	}
	return t.tick.Load()
}

// Emit stamps ev with the next sequence number, the current logical
// tick, and the wall-clock offset, then forwards it to the sink. On the
// nil tracer this is a no-op that performs no allocation, so call sites
// may construct the Event argument unconditionally.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = t.seq
	t.seq++
	ev.Tick = t.tick.Load()
	ev.Wall = time.Since(t.start).Seconds()
	if t.causal {
		t.clock++
		ev.Clock = t.clock
		ev.Orig = t.orig
	}
	t.sink.Emit(ev) //lint:ignore lockblock Tracer structurally satisfies Sink, but NewTracer never wraps one; real sinks append to memory or a bufio buffer and take no tracer lock
	t.mu.Unlock()
}

// EnableCausal switches the tracer into distributed (causal) mode: every
// subsequent event carries a Lamport clock and origin = the endpoint's
// comm rank. The distributed transport calls this once per endpoint when
// the connection is established; single-process runs never enable it, so
// their traces stay bit-identical to pre-causal ones (Clock/Orig encode
// only when set). Safe on the nil tracer.
func (t *Tracer) EnableCausal(origin int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.causal = true
	t.orig = origin
	t.mu.Unlock()
}

// ClockSend advances the Lamport clock for an outgoing message and
// returns the value to piggyback on the wire frame. Send events on the
// wire are clock events: any event the sender emitted before the Send
// call has a strictly smaller clock. Returns 0 when the tracer is nil or
// not in causal mode (the frame then carries no causal information).
func (t *Tracer) ClockSend() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.causal {
		return 0
	}
	t.clock++
	return t.clock
}

// ClockRecv merges a remote Lamport clock carried by an incoming frame:
// the local clock becomes max(local, remote), so every event emitted
// after the receive is causally ordered after every event the sender
// emitted before the send. Safe on the nil tracer; remote values ≤ 0
// (non-causal peers) are ignored.
func (t *Tracer) ClockRecv(remote int64) {
	if t == nil || remote <= 0 {
		return
	}
	t.mu.Lock()
	if remote > t.clock {
		t.clock = remote
	}
	t.mu.Unlock()
}

// Close flushes and closes the underlying sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sink.Close() //lint:ignore lockblock sinks close buffered writers or files, never a Tracer; t.mu is unreachable from any real Sink.Close
}

// MemSink buffers events in memory; the in-process test sink.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *MemSink) Emit(ev Event) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	m.mu.Unlock()
}

// Close implements Sink (no resources to release).
func (m *MemSink) Close() error { return nil }

// Events returns a copy of the recorded events.
func (m *MemSink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Filter returns the recorded events of one kind.
func (m *MemSink) Filter(kind string) []Event {
	var out []Event
	for _, ev := range m.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// WriterSink streams events as JSONL to an io.Writer through a reused
// encode buffer.
type WriterSink struct {
	w     *bufio.Writer
	c     io.Closer // optional; closed after flush
	buf   []byte
	fails int
}

// NewWriterSink wraps w; if w is also an io.Closer it is closed by Close.
func NewWriterSink(w io.Writer) *WriterSink {
	s := &WriterSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// NewFileSink creates (truncating) a JSONL trace file at path.
func NewFileSink(path string) (*WriterSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create trace file: %w", err)
	}
	return NewWriterSink(f), nil
}

// Emit implements Sink. Write errors are deferred to Close: tracing is
// best-effort during the run, but a truncated trace must not pass
// silently at the end.
func (s *WriterSink) Emit(ev Event) {
	s.buf = ev.AppendJSON(s.buf[:0])
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.fails++
	}
}

// Close flushes the stream and reports any write failure seen en route.
func (s *WriterSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	if err == nil && s.fails > 0 {
		err = fmt.Errorf("obs: %d trace write(s) failed", s.fails)
	}
	return err
}
