package obs

import (
	"bytes"
	"strings"
	"testing"
)

// The pinned fixture: per-rank traces of a tiny 3-process run
// (coordinator = origin 0, workers = origins 1 and 2), with Lamport
// clocks consistent with the message flow — dispatches happen-before
// the workers' ship/solution events, which happen-before the
// coordinator's collect.node and outcomes.
const (
	fixtureCoord = `{"seq":0,"tick":0,"wall":0,"kind":"run.start","rank":0,"sub":0,"dual":0,"primal":0,"open":2,"nodes":0,"clock":1}
{"seq":1,"tick":1,"wall":0.01,"kind":"dispatch","rank":1,"sub":1,"dual":-5,"primal":0,"open":0,"nodes":0,"clock":2}
{"seq":2,"tick":2,"wall":0.02,"kind":"dispatch","rank":2,"sub":2,"dual":-4,"primal":0,"open":0,"nodes":0,"clock":3}
{"seq":3,"tick":3,"wall":0.05,"kind":"collect.start","rank":0,"sub":0,"dual":0,"primal":0,"open":1,"nodes":0,"clock":8}
{"seq":4,"tick":4,"wall":0.06,"kind":"collect.node","rank":1,"sub":3,"dual":-3,"primal":0,"open":0,"nodes":0,"clock":9}
{"seq":5,"tick":5,"wall":0.07,"kind":"collect.stop","rank":0,"sub":0,"dual":0,"primal":0,"open":2,"nodes":0,"clock":10}
{"seq":6,"tick":6,"wall":0.08,"kind":"outcome","rank":1,"sub":0,"dual":0,"primal":0,"open":0,"nodes":4,"clock":11,"str":"completed"}
{"seq":7,"tick":7,"wall":0.09,"kind":"outcome","rank":2,"sub":0,"dual":0,"primal":0,"open":0,"nodes":3,"clock":12,"str":"completed"}
{"seq":8,"tick":8,"wall":0.1,"kind":"run.end","rank":0,"sub":0,"dual":7,"primal":7,"open":0,"nodes":7,"clock":13}
`
	fixtureRank1 = `{"seq":0,"tick":0,"wall":0,"kind":"comm.connect","rank":1,"sub":0,"dual":0,"primal":0,"open":3,"nodes":0,"clock":4,"orig":1}
{"seq":1,"tick":1,"wall":0.03,"kind":"worker.ship","rank":1,"sub":0,"dual":-3,"primal":0,"open":1,"nodes":0,"clock":5,"orig":1}
{"seq":2,"tick":2,"wall":0.04,"kind":"worker.sol","rank":1,"sub":0,"dual":0,"primal":7,"open":0,"nodes":0,"clock":6,"orig":1}
`
	fixtureRank2 = `{"seq":0,"tick":0,"wall":0,"kind":"comm.connect","rank":2,"sub":0,"dual":0,"primal":0,"open":3,"nodes":0,"clock":4,"orig":2}
{"seq":1,"tick":1,"wall":0.05,"kind":"worker.sol","rank":2,"sub":0,"dual":0,"primal":7,"open":0,"nodes":0,"clock":7,"orig":2}
`
)

func fixtureTraces(t *testing.T) [][]Event {
	t.Helper()
	var out [][]Event
	for _, raw := range []string{fixtureCoord, fixtureRank1, fixtureRank2} {
		evs, err := ReadTrace(strings.NewReader(raw))
		if err != nil {
			t.Fatalf("fixture: %v", err)
		}
		if err := ValidateTrace(evs); err != nil {
			t.Fatalf("fixture invalid per-stream: %v", err)
		}
		out = append(out, evs)
	}
	return out
}

func TestMergeTracesOrdersAndRestamps(t *testing.T) {
	traces := fixtureTraces(t)
	merged, err := MergeTraces(traces...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMergedTrace(merged); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	want := 9 + 3 + 2
	if len(merged) != want {
		t.Fatalf("merged %d events, want %d", len(merged), want)
	}
	for i, ev := range merged {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d: seq %d not re-stamped dense", i, ev.Seq)
		}
		if ev.Tick != ev.Clock {
			t.Fatalf("event %d: tick %d != clock %d", i, ev.Tick, ev.Clock)
		}
	}
	// Causal spine: dispatch to rank 1 < rank 1's ship < the
	// coordinator's collect.node, and the equal-clock comm.connects
	// tie-break by origin.
	idx := map[string]int{}
	for i, ev := range merged {
		idx[ev.Kind+"/"+itoa(ev.Orig)+"/"+itoa(ev.Rank)] = i
	}
	if !(idx["dispatch/0/1"] < idx["worker.ship/1/1"] && idx["worker.ship/1/1"] < idx["collect.node/0/1"]) {
		t.Fatalf("causal order broken: %v", idx)
	}
	if idx["comm.connect/1/1"] > idx["comm.connect/2/2"] {
		t.Fatal("equal-clock events not tie-broken by origin")
	}
}

func itoa(v int) string { return string(rune('0' + v)) }

func TestMergeRepeatedMergesByteIdentical(t *testing.T) {
	serialize := func(evs []Event) []byte {
		var buf []byte
		for _, ev := range evs {
			buf = ev.AppendJSON(buf)
			buf = append(buf, '\n')
		}
		return buf
	}
	traces := fixtureTraces(t)
	a, err := MergeTraces(traces[0], traces[1], traces[2])
	if err != nil {
		t.Fatal(err)
	}
	// Same inputs again — MergeTraces must not have mutated them.
	b, err := MergeTraces(traces[0], traces[1], traces[2])
	if err != nil {
		t.Fatal(err)
	}
	// And in a different argument order: the (clock, orig, seq) key is a
	// total order, so the byte stream must not depend on input order.
	c, err := MergeTraces(traces[2], traces[0], traces[1])
	if err != nil {
		t.Fatal(err)
	}
	sa, sb, sc := serialize(a), serialize(b), serialize(c)
	if !bytes.Equal(sa, sb) {
		t.Fatalf("repeated merge differs:\n%s\n---\n%s", sa, sb)
	}
	if !bytes.Equal(sa, sc) {
		t.Fatalf("input-order-dependent merge:\n%s\n---\n%s", sa, sc)
	}
}

func TestMergeTracesRejectsBadInputs(t *testing.T) {
	traces := fixtureTraces(t)
	if _, err := MergeTraces(); err == nil {
		t.Error("empty merge accepted")
	}
	// A single-process trace has no Lamport clocks.
	plain := []Event{{Seq: 0, Kind: KindRunStart}}
	if _, err := MergeTraces(plain); err == nil {
		t.Error("clockless trace accepted")
	}
	// The same rank's file twice.
	if _, err := MergeTraces(traces[0], traces[1], traces[1]); err == nil {
		t.Error("duplicate trace accepted")
	}
}

func TestValidateMergedTraceCatchesCrossRankViolations(t *testing.T) {
	merge := func() []Event {
		m, err := MergeTraces(fixtureTraces(t)...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	find := func(evs []Event, kind string, orig int) int {
		for i, ev := range evs {
			if ev.Kind == kind && ev.Orig == orig {
				return i
			}
		}
		t.Fatalf("no %s from origin %d", kind, orig)
		return -1
	}

	if err := ValidateMergedTrace(merge()); err != nil {
		t.Fatalf("valid merged trace rejected: %v", err)
	}

	// Tick no longer mirroring the clock.
	bad := merge()
	bad[3].Tick++
	if err := ValidateMergedTrace(bad); err == nil {
		t.Error("tick != clock accepted")
	}

	// A worker shipping outside its dispatch→outcome window: move rank
	// 1's ship before the dispatch by giving it a smaller clock.
	bad = merge()
	i := find(bad, KindWorkerShip, 1)
	bad[i].Clock = 1
	bad[i].Tick = 1
	// Re-merge to restore sort order, then the window check must fire.
	resorted, err := MergeTraces(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMergedTrace(resorted); err == nil {
		t.Error("ship outside dispatch window accepted")
	}

	// A collect.node with no announced ship: drop the worker.ship event.
	bad = merge()
	i = find(bad, KindWorkerShip, 1)
	bad = append(bad[:i], bad[i+1:]...)
	for j := range bad {
		bad[j].Seq = int64(j)
	}
	if err := ValidateMergedTrace(bad); err == nil {
		t.Error("collect.node without ship accepted")
	}

	// An origin whose clocks are not strictly increasing.
	bad = merge()
	i = find(bad, KindWorkerSol, 1)
	bad[i].Clock = bad[i-1].Clock
	bad[i].Tick = bad[i].Clock
	if err := ValidateMergedTrace(bad); err == nil {
		t.Error("non-increasing per-origin clock accepted")
	}
}
