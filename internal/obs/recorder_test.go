package obs

import (
	"reflect"
	"testing"
)

// mkEvent builds a schema-valid event with a dense sequence number, the
// shape the tracer produces, so recorder windows pass bundle validation.
func mkEvent(seq int64) Event {
	return Event{Seq: seq, Tick: seq, Kind: KindStatus, Rank: 1, Dual: float64(seq)}
}

func TestRecorderRingWrapAndOrder(t *testing.T) {
	r := NewRecorder(nil, 4)
	for seq := int64(1); seq <= 10; seq++ {
		r.Emit(mkEvent(seq))
	}
	got := r.Events()
	if len(got) != 4 || r.Len() != 4 {
		t.Fatalf("retained %d events (Len %d), want 4", len(got), r.Len())
	}
	for i, ev := range got {
		if want := int64(7 + i); ev.Seq != want {
			t.Errorf("event[%d].Seq = %d, want %d (oldest-first tail)", i, ev.Seq, want)
		}
	}
}

func TestRecorderUnderfilledRing(t *testing.T) {
	r := NewRecorder(nil, 0) // default capacity
	for seq := int64(1); seq <= 3; seq++ {
		r.Emit(mkEvent(seq))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	if got[0].Seq != 1 || got[2].Seq != 3 {
		t.Fatalf("tail out of order: %+v", got)
	}
}

// TestRecorderForwardsUnchanged pins the determinism contract: a chain
// with a recorder teed in front of the sink delivers the identical
// event sequence downstream, so trace files are byte-for-byte the same
// whether or not the flight recorder is armed.
func TestRecorderForwardsUnchanged(t *testing.T) {
	direct := &MemSink{}
	teed := &MemSink{}
	rec := NewRecorder(teed, 8)
	for seq := int64(1); seq <= 20; seq++ {
		direct.Emit(mkEvent(seq))
		rec.Emit(mkEvent(seq))
	}
	if !reflect.DeepEqual(direct.Events(), teed.Events()) {
		t.Fatal("recorder altered the downstream event stream")
	}
}

// TestRecorderCloseKeepsRing: post-mortem capture runs after the solve
// path tears its telemetry down, so Close must leave the ring readable.
func TestRecorderCloseKeepsRing(t *testing.T) {
	r := NewRecorder(&MemSink{}, 4)
	r.Emit(mkEvent(1))
	r.Emit(mkEvent(2))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := r.Events(); len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("ring unreadable after Close: %+v", got)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Emit(mkEvent(1)) // must not panic
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil recorder should report an empty ring")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderEmitZeroAlloc pins the hot-path contract deterministically
// (the benchmark below is the perf-ledger view of the same property):
// steady-state emission into a full ring allocates nothing.
func TestRecorderEmitZeroAlloc(t *testing.T) {
	r := NewRecorder(nil, 64)
	ev := mkEvent(1)
	if avg := testing.AllocsPerRun(1000, func() { r.Emit(ev) }); avg != 0 {
		t.Fatalf("Recorder.Emit allocates %.1f per op, want 0", avg)
	}
}

// BenchmarkRecorderEmit is the hot-path pin scripts/bench_hot.sh records
// in BENCH_hotpath.json: emission must stay 0 allocs/op.
func BenchmarkRecorderEmit(b *testing.B) {
	r := NewRecorder(nil, recorderDefaultCap)
	ev := mkEvent(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = int64(i)
		r.Emit(ev)
	}
}
