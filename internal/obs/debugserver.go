package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// DebugServer serves Go's net/http/pprof profiling endpoints plus the
// live telemetry surface — /statusz (human-readable metrics table),
// /metrics (Prometheus text exposition) and /events (SSE event stream
// off the bus) — the observation side-channel a long parallel solve
// exposes without touching the deterministic solve path (everything
// here is read-only observation).
type DebugServer struct {
	srv      *http.Server
	ln       net.Listener
	stop     chan struct{} // closed by Close: terminates active SSE streams
	stopOnce sync.Once

	// sseHeartbeat is the idle-connection keepalive interval for /events
	// (comment frames, so proxies don't reap quiet streams). Tests lower
	// it; the ?heartbeat= query parameter can too.
	sseHeartbeat time.Duration
	sseActive    atomic.Int64
}

// maxSSESubscribers caps concurrent /events streams. Each stream owns a
// bus ring plus a pump goroutine; past the cap the endpoint answers 503
// rather than letting scrapers grow the process without bound.
const maxSSESubscribers = 32

// StartDebugServer listens on addr (e.g. "localhost:6060" or ":0") and
// serves /debug/pprof/*, /statusz, /metrics and /events in a background
// goroutine until Close. reg may be nil (/statusz and /metrics then
// report only process-level series); bus may be nil (/events then
// answers 503 — the process has no live event plane). A dedicated mux
// is used rather than http.DefaultServeMux so importing this package
// never mounts profiling handlers on servers the caller owns.
func StartDebugServer(addr string, reg *Registry, bus *Bus) (*DebugServer, error) {
	d := &DebugServer{stop: make(chan struct{}), sseHeartbeat: 15 * time.Second}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	start := time.Now()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "uptime_seconds %.1f\n\n", time.Since(start).Seconds())
		if err := WriteTable(w, reg.Snapshot()); err != nil {
			return // client went away mid-write; nothing to do
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Process gauges first, then the solver registry; WriteProm
		// sorts families within each call, and the two name spaces
		// (go_* vs solver metrics) do not collide.
		if err := WriteProm(w, ProcessMetrics()); err != nil {
			return
		}
		if err := WriteProm(w, reg.Snapshot()); err != nil {
			return
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		d.serveEvents(w, r, bus)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	d.ln = ln
	d.srv = &http.Server{
		Handler: mux,
		// A client that opens a connection and never finishes its request
		// headers, or parks an idle keep-alive connection forever, must
		// not pin server resources; SSE responses are exempt from these
		// (they apply to reads and idle keep-alives, not active writes).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		// Serve returns http.ErrServerClosed (or an accept error) once
		// Close tears the listener down; either way the goroutine exits.
		_ = d.srv.Serve(d.ln)
	}()
	return d, nil
}

// serveEvents answers the /events endpoint: admission control (no bus →
// 503, subscriber cap → 503), then the shared ServeSSE streaming loop.
func (d *DebugServer) serveEvents(w http.ResponseWriter, r *http.Request, bus *Bus) {
	if bus == nil {
		http.Error(w, "no event bus in this process (start the solve with -trace, -watchdog or -pprof)", http.StatusServiceUnavailable)
		return
	}
	if n := d.sseActive.Add(1); n > maxSSESubscribers {
		d.sseActive.Add(-1)
		http.Error(w, fmt.Sprintf("too many event subscribers (cap %d)", maxSSESubscribers), http.StatusServiceUnavailable)
		return
	}
	defer d.sseActive.Add(-1)
	ServeSSE(w, r, bus, SSEOptions{Heartbeat: d.sseHeartbeat, Stop: d.stop})
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server, terminates active SSE streams and frees the
// listener.
func (d *DebugServer) Close() error {
	d.stopOnce.Do(func() { close(d.stop) })
	return d.srv.Close()
}
