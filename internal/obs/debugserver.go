package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer serves Go's net/http/pprof profiling endpoints plus a
// /statusz page rendering the live metrics registry — the profiling
// side-channel a long parallel solve exposes without touching the
// deterministic solve path (everything here is read-only observation).
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartDebugServer listens on addr (e.g. "localhost:6060" or ":0") and
// serves /debug/pprof/* and /statusz in a background goroutine until
// Close. reg may be nil; /statusz then reports no metrics. A dedicated
// mux is used rather than http.DefaultServeMux so importing this package
// never mounts profiling handlers on servers the caller owns.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	start := time.Now()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "uptime_seconds %.1f\n\n", time.Since(start).Seconds())
		if err := WriteTable(w, reg.Snapshot()); err != nil {
			return // client went away mid-write; nothing to do
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	d := &DebugServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() {
		// Serve returns http.ErrServerClosed (or an accept error) once
		// Close tears the listener down; either way the goroutine exits.
		_ = d.srv.Serve(d.ln)
	}()
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and frees the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
