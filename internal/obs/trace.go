package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// ReadTrace decodes a JSONL trace stream into events, in file order.
// Decoding stops at the first malformed line. A final line that is not
// newline-terminated is reported as an error even when it parses: every
// sink ends each record with '\n', so a missing terminator means the
// writer died mid-record and the trace is truncated. The events decoded
// before the error are returned alongside it so callers can report how
// far the stream was readable.
func ReadTrace(r io.Reader) ([]Event, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []Event
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return out, err
		}
		partial := err == io.EOF && len(raw) > 0
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) > 0 {
			line++
			if partial {
				return out, fmt.Errorf("obs: line %d: partial trailing record (%d bytes, no newline) — trace truncated mid-write", line, len(raw))
			}
			ev, perr := ParseLine(trimmed)
			if perr != nil {
				return out, fmt.Errorf("line %d: %w", line, perr)
			}
			out = append(out, ev)
		}
		if err == io.EOF {
			return out, nil
		}
	}
}

// ValidateTrace checks the structural invariants every well-formed trace
// satisfies: known event kinds, strictly increasing sequence numbers
// starting at 0, non-decreasing logical ticks, a run.start (or
// scip.node, or — in a distributed run, where rendezvous precedes the
// coordination loop — comm.connect/comm.retry) opener, balanced
// collect-mode brackets, and dispatch/outcome pairing per rank (an
// outcome may only arrive from a rank with a subproblem in flight; an
// unmatched trailing dispatch is legal — it is what a worker-death or
// limit-stop trace looks like). It returns the first violation, or nil.
// This is the check CI's trace smoke test runs.
func ValidateTrace(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	collectDepth := 0
	inflight := map[int]int{} // rank → dispatched-but-unresolved subproblems
	for i, ev := range events {
		if !KnownKind(ev.Kind) {
			return fmt.Errorf("obs: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Seq != int64(i) {
			return fmt.Errorf("obs: event %d: seq %d out of order (want %d)", i, ev.Seq, i)
		}
		if i > 0 && ev.Tick < events[i-1].Tick {
			return fmt.Errorf("obs: event %d: tick %d < previous tick %d", i, ev.Tick, events[i-1].Tick)
		}
		switch ev.Kind {
		case KindCollectStart:
			collectDepth++
			if collectDepth > 1 {
				return fmt.Errorf("obs: event %d: nested collect.start", i)
			}
		case KindCollectStop:
			collectDepth--
			if collectDepth < 0 {
				return fmt.Errorf("obs: event %d: collect.stop without collect.start", i)
			}
		case KindDispatch:
			inflight[ev.Rank]++
		case KindOutcome:
			if inflight[ev.Rank] == 0 {
				return fmt.Errorf("obs: event %d: outcome from rank %d without a dispatch in flight", i, ev.Rank)
			}
			inflight[ev.Rank]--
		}
	}
	switch events[0].Kind {
	case KindRunStart, KindScipNode, KindCommConnect, KindCommRetry:
	default:
		return fmt.Errorf("obs: trace starts with %q, want %q", events[0].Kind, KindRunStart)
	}
	return nil
}
