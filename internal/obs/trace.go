package obs

import (
	"bufio"
	"fmt"
	"io"
)

// ReadTrace decodes a JSONL trace stream into events, in file order.
// Decoding stops at the first malformed line.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev, err := ParseLine(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ValidateTrace checks the structural invariants every well-formed trace
// satisfies: known event kinds, strictly increasing sequence numbers
// starting at 0, non-decreasing logical ticks, a run.start (or
// scip.node, or — in a distributed run, where rendezvous precedes the
// coordination loop — comm.connect/comm.retry) opener, and balanced
// collect-mode brackets. It returns the first violation, or nil. This
// is the check CI's trace smoke test runs.
func ValidateTrace(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("obs: empty trace")
	}
	collectDepth := 0
	for i, ev := range events {
		if !KnownKind(ev.Kind) {
			return fmt.Errorf("obs: event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.Seq != int64(i) {
			return fmt.Errorf("obs: event %d: seq %d out of order (want %d)", i, ev.Seq, i)
		}
		if i > 0 && ev.Tick < events[i-1].Tick {
			return fmt.Errorf("obs: event %d: tick %d < previous tick %d", i, ev.Tick, events[i-1].Tick)
		}
		switch ev.Kind {
		case KindCollectStart:
			collectDepth++
			if collectDepth > 1 {
				return fmt.Errorf("obs: event %d: nested collect.start", i)
			}
		case KindCollectStop:
			collectDepth--
			if collectDepth < 0 {
				return fmt.Errorf("obs: event %d: collect.stop without collect.start", i)
			}
		}
	}
	switch events[0].Kind {
	case KindRunStart, KindScipNode, KindCommConnect, KindCommRetry:
	default:
		return fmt.Errorf("obs: trace starts with %q, want %q", events[0].Kind, KindRunStart)
	}
	return nil
}
