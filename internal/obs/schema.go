package obs

import "sort"

// This file is the machine-readable half of the trace schema: which
// event kinds exist (KnownKinds) and which payload fields each kind may
// carry (KindFields). cmd/ugtrace's validator and the tracekind static
// analyzer both read it, so there is exactly one list to keep current
// when an event kind is added.

// kindFields lists, per kind, the payload fields an emit site may set.
// Seq, Tick and Wall are stamped by the Tracer and Clock/Orig by the
// causal decorator, so none of them appear here: an emit site setting
// one is a schema violation. Setting a subset of the listed fields is
// fine (e.g. comm.peerdown with no Str on the synthetic coordinator-side
// event); setting a field outside the list means the emit site and the
// schema have drifted apart.
var kindFields = map[string][]string{
	KindRunStart:      {"Open"},
	KindRunEnd:        {"Dual", "Primal", "Nodes"},
	KindRunStop:       {"Open"},
	KindDispatch:      {"Rank", "Sub", "Dual", "Str"},
	KindOutcome:       {"Rank", "Nodes", "Open", "Str"},
	KindStatus:        {"Rank", "Dual", "Open", "Nodes"},
	KindIncumbent:     {"Rank", "Primal"},
	KindDualBound:     {"Dual", "Primal"},
	KindCollectStart:  {"Open"},
	KindCollectStop:   {"Open"},
	KindCollectNode:   {"Rank", "Sub", "Dual"},
	KindRacingStart:   {"Open"},
	KindRacingWinner:  {"Rank", "Sub", "Str"},
	KindRacingDone:    {"Open"},
	KindCkptSave:      {"Open", "Str"},
	KindCkptRestore:   {"Open", "Str"},
	KindSolverBusy:    {"Rank"},
	KindSolverIdle:    {"Rank"},
	KindWorkerShip:    {"Rank", "Dual", "Open"},
	KindWorkerSol:     {"Rank", "Primal"},
	KindScipNode:      {"Sub", "Dual", "Primal", "Open", "Nodes"},
	KindCommConnect:   {"Rank", "Open", "Str"},
	KindCommRetry:     {"Rank", "Open", "Str"},
	KindCommHeartbeat: {"Rank"},
	KindCommPeerDown:  {"Rank", "Str"},
	KindWatchdogStall: {"Rank", "Open", "Str"},
}

// KnownKinds returns the closed set of event kinds, sorted. The slice is
// a fresh copy; callers may keep or mutate it.
func KnownKinds() []string {
	kinds := make([]string, 0, len(knownKinds))
	for k := range knownKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// KindFields returns the payload fields emit sites may set for kind,
// sorted, or nil for an unknown kind. The slice is a fresh copy.
func KindFields(kind string) []string {
	fields, ok := kindFields[kind]
	if !ok {
		return nil
	}
	out := append([]string(nil), fields...)
	sort.Strings(out)
	return out
}

// KindAllowsField reports whether an emit site may set field on an
// event of the given kind. Unknown kinds allow nothing.
func KindAllowsField(kind, field string) bool {
	for _, f := range kindFields[kind] {
		if f == field {
			return true
		}
	}
	return false
}
