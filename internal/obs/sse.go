package obs

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// SSEOptions tunes one ServeSSE stream.
type SSEOptions struct {
	// Heartbeat is the idle keepalive interval (`: keepalive` comment
	// frames, so proxies don't reap quiet streams). Zero means 15s. The
	// client may override it with a `?heartbeat=` query parameter
	// (minimum 10ms).
	Heartbeat time.Duration
	// Stop, when non-nil, terminates the stream promptly when closed —
	// the owning server closes it on shutdown so drains don't wait on
	// parked clients.
	Stop <-chan struct{}
}

// ServeSSE streams live bus events to one HTTP client as Server-Sent
// Events: one `data: <event JSONL>` frame per event until the client
// disconnects, the bus closes (its run ended), or opts.Stop fires.
// `?kind=a,b` (or repeated kind parameters) filters to the named event
// kinds. This is the streaming core shared by the debug server's
// /events endpoint and ugserve's per-job event streams — the latter
// passes a bus scoped to a single job, so the handler is "the /events
// handler scoped to one job" by construction.
func ServeSSE(w http.ResponseWriter, r *http.Request, bus *Bus, opts SSEOptions) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}

	var kinds []string
	for _, v := range r.URL.Query()["kind"] {
		for _, k := range strings.Split(v, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds = append(kinds, k)
			}
		}
	}
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	if hb := r.URL.Query().Get("heartbeat"); hb != "" {
		if dur, err := time.ParseDuration(hb); err == nil && dur >= 10*time.Millisecond {
			heartbeat = dur
		}
	}

	events, cancel := bus.Subscribe(kinds...)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	var buf []byte
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return // bus closed under us (run/job ended)
			}
			buf = append(buf[:0], "data: "...)
			buf = ev.AppendJSON(buf)
			buf = append(buf, '\n', '\n')
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-opts.Stop:
			return // server closing: end the stream promptly
		}
	}
}

// ReplaySSE writes a fixed event list to one HTTP client in the same
// SSE frame format ServeSSE streams live, then ends the stream. It is
// the after-the-fact companion for finished runs: ugserve replays a
// terminal job's flight-recorder tail through it, so a client that
// arrives after completion still sees the last window of events
// (`?kind=` filtering works the same as on the live stream).
func ReplaySSE(w http.ResponseWriter, r *http.Request, events []Event) {
	var kinds map[string]bool
	for _, v := range r.URL.Query()["kind"] {
		for _, k := range strings.Split(v, ",") {
			if k = strings.TrimSpace(k); k != "" {
				if kinds == nil {
					kinds = map[string]bool{}
				}
				kinds[k] = true
			}
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	var buf []byte
	for _, ev := range events {
		if kinds != nil && !kinds[ev.Kind] {
			continue
		}
		buf = append(buf[:0], "data: "...)
		buf = ev.AppendJSON(buf)
		buf = append(buf, '\n', '\n')
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}
