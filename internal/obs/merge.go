package obs

import (
	"fmt"
	"sort"
)

// MergeTraces joins the per-rank JSONL traces of one distributed run
// into a single causally consistent global timeline. Inputs are the
// per-process event streams in any order (coordinator + workers); each
// stream must have been recorded by a tracer in causal mode, i.e. every
// event carries a Lamport clock > 0.
//
// The merged order is the deterministic total order (Clock, Orig,
// original Seq): Lamport clocks give the causal skeleton — if event a
// happened-before event b across processes, Clock(a) < Clock(b) — and
// the (rank, local-seq) tie-break makes the interleaving of concurrent
// events reproducible byte for byte across repeated merges of the same
// inputs. The result is re-stamped as one stream: Seq is dense from 0
// and Tick is the global Lamport clock (the per-process seq/tick
// counters are process-local and meaningless across ranks).
func MergeTraces(traces ...[]Event) ([]Event, error) {
	var out []Event
	seen := map[[2]int64]bool{} // (orig, local seq) — catches merging one rank's file twice
	for ti, tr := range traces {
		for i, ev := range tr {
			if ev.Clock <= 0 {
				return nil, fmt.Errorf("obs: input %d event %d (%s) has no Lamport clock — not a distributed trace; merge needs per-rank traces from a net run", ti, i, ev.Kind)
			}
			key := [2]int64{int64(ev.Orig), ev.Seq}
			if seen[key] {
				return nil, fmt.Errorf("obs: input %d event %d duplicates (orig %d, seq %d) — same rank's trace given twice?", ti, i, ev.Orig, ev.Seq)
			}
			seen[key] = true
			out = append(out, ev)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: nothing to merge")
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Orig != b.Orig {
			return a.Orig < b.Orig
		}
		return a.Seq < b.Seq
	})
	for i := range out {
		out[i].Seq = int64(i)
		out[i].Tick = out[i].Clock
	}
	return out, nil
}

// ValidateMergedTrace checks the cross-rank invariants of a merged
// distributed trace on top of the single-stream ValidateTrace checks:
//
//   - every event carries a Lamport clock and Tick == Clock (the merge
//     re-stamps ticks with the global clock);
//   - the stream is sorted by the merge's (Clock, Orig) key and each
//     origin's clocks are strictly increasing (a process's own events
//     are totally ordered);
//   - every dispatch happens-before its outcome (inherited from
//     ValidateTrace's in-flight pairing, which after the merge holds in
//     causal rather than merely file order);
//   - worker-side ship/solution events land inside the dispatch→outcome
//     window of their origin rank — a worker only works when the
//     coordinator believes it does;
//   - collect intervals balance globally: collect brackets are emitted
//     by exactly one process (the coordinator), and every shipped
//     collect.node is received after the origin worker announced the
//     ship (causal consistency of the load-balancing channel).
func ValidateMergedTrace(events []Event) error {
	if err := ValidateTrace(events); err != nil {
		return err
	}
	lastClock := map[int]int64{} // per-origin Lamport clock high-water
	inflight := map[int]int{}    // rank → dispatched-but-unresolved subproblems
	ships := map[int]int{}       // rank → announced-but-unreceived node ships
	collectOrig := -1
	for i, ev := range events {
		if ev.Clock <= 0 {
			return fmt.Errorf("obs: event %d (%s): no Lamport clock in merged trace", i, ev.Kind)
		}
		if ev.Tick != ev.Clock {
			return fmt.Errorf("obs: event %d (%s): tick %d != clock %d after merge", i, ev.Kind, ev.Tick, ev.Clock)
		}
		if i > 0 {
			prev := events[i-1]
			if ev.Clock < prev.Clock || (ev.Clock == prev.Clock && ev.Orig < prev.Orig) {
				return fmt.Errorf("obs: event %d: (clock %d, orig %d) sorts before predecessor (clock %d, orig %d)", i, ev.Clock, ev.Orig, prev.Clock, prev.Orig)
			}
		}
		if ev.Clock <= lastClock[ev.Orig] {
			return fmt.Errorf("obs: event %d: origin %d clock %d not strictly increasing (last %d)", i, ev.Orig, ev.Clock, lastClock[ev.Orig])
		}
		lastClock[ev.Orig] = ev.Clock
		switch ev.Kind {
		case KindDispatch:
			inflight[ev.Rank]++
		case KindOutcome:
			inflight[ev.Rank]--
		case KindWorkerShip, KindWorkerSol:
			if inflight[ev.Orig] <= 0 {
				return fmt.Errorf("obs: event %d: %s from rank %d outside any dispatch→outcome window", i, ev.Kind, ev.Orig)
			}
			if ev.Kind == KindWorkerShip {
				ships[ev.Orig]++
			}
		case KindCollectNode:
			if ships[ev.Rank] <= 0 {
				return fmt.Errorf("obs: event %d: collect.node from rank %d before that rank announced a ship", i, ev.Rank)
			}
			ships[ev.Rank]--
		case KindCollectStart, KindCollectStop:
			if collectOrig == -1 {
				collectOrig = ev.Orig
			} else if ev.Orig != collectOrig {
				return fmt.Errorf("obs: event %d: %s from origin %d, but collect brackets belong to origin %d", i, ev.Kind, ev.Orig, collectOrig)
			}
		}
	}
	return nil
}
