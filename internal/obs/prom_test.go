package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{quantile="([0-9.]+)"\})? (-?[0-9].*|[+-]Inf|NaN)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
)

// checkPromGrammar validates a /metrics body line by line against the
// text exposition format 0.0.4 subset we emit: every sample's metric
// name is in the legal charset, every sample is preceded by a # TYPE
// for its family, quantile labels within a summary are strictly
// increasing, and each family appears exactly once.
func checkPromGrammar(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}    // family -> declared type
	seenFamily := map[string]bool{} // family that already has samples
	lastQuantile := map[string]float64{}
	if body == "" {
		t.Fatal("empty exposition body")
	}
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		lineNo := i + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line in exposition", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			if _, dup := typed[m[1]]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %s", lineNo, m[1])
			}
			if seenFamily[m[1]] {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, m[1])
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment form: %q", lineNo, line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", lineNo, line)
			}
			name, quantile, value := m[1], m[3], m[4]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: illegal metric name %q", lineNo, name)
			}
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Fatalf("line %d: unparseable sample value %q: %v", lineNo, value, err)
			}
			family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
			if quantile != "" {
				family = name
			}
			typ, ok := typed[family]
			if !ok {
				// _sum/_count trimming may not apply (plain gauge ending in
				// _count is legal) — fall back to the exact name.
				typ, ok = typed[name]
				family = name
			}
			if !ok {
				t.Fatalf("line %d: sample %s has no preceding TYPE", lineNo, name)
			}
			seenFamily[family] = true
			if quantile != "" {
				if typ != "summary" {
					t.Fatalf("line %d: quantile label on %s family %s", lineNo, typ, family)
				}
				q, err := strconv.ParseFloat(quantile, 64)
				if err != nil || q <= 0 || q >= 1 {
					t.Fatalf("line %d: bad quantile %q", lineNo, quantile)
				}
				if prev, ok := lastQuantile[family]; ok && q <= prev {
					t.Fatalf("line %d: quantiles not increasing for %s: %g after %g", lineNo, family, q, prev)
				}
				lastQuantile[family] = q
			}
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"ug.comm.bytes", "ug_comm_bytes"},
		{"already_legal:name", "already_legal:name"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"dash-and space", "dash_and_space"},
		{"ünïcode", "__n__code"}, // each non-ASCII byte becomes '_'
	} {
		if got := sanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestWritePromRendersRegistryKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ug.dispatch.total").Add(12345678901) // > 1e7: must not go scientific
	reg.Gauge("ug.active.solvers").Set(7)
	h := reg.Histogram("ug.node.ms", []float64{1, 10, 100})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i % 40))
	}
	var sb strings.Builder
	if err := WriteProm(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromGrammar(t, out)

	for _, want := range []string{
		"# TYPE ug_dispatch_total counter\n",
		"ug_dispatch_total 12345678901\n",
		"# TYPE ug_active_solvers gauge\n",
		"ug_active_solvers 7\n",
		"# TYPE ug_active_solvers_highwater gauge\n",
		"# TYPE ug_node_ms summary\n",
		`ug_node_ms{quantile="0.5"}`,
		`ug_node_ms{quantile="0.95"}`,
		`ug_node_ms{quantile="0.99"}`,
		"ug_node_ms_sum ",
		"ug_node_ms_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Summary layout: quantiles ascending, then _sum, then _count.
	idx := func(s string) int { return strings.Index(out, s) }
	if !(idx(`ug_node_ms{quantile="0.5"}`) < idx(`ug_node_ms{quantile="0.95"}`) &&
		idx(`ug_node_ms{quantile="0.95"}`) < idx(`ug_node_ms{quantile="0.99"}`) &&
		idx(`ug_node_ms{quantile="0.99"}`) < idx("ug_node_ms_sum ") &&
		idx("ug_node_ms_sum ") < idx("ug_node_ms_count ")) {
		t.Fatalf("summary samples out of order:\n%s", out)
	}
}

func TestWritePromEmptyHistogramOmitsQuantiles(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("ug.empty.ms", []float64{1, 10})
	var sb strings.Builder
	if err := WriteProm(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	checkPromGrammar(t, out)
	if !strings.Contains(out, "ug_empty_ms_count 0\n") {
		t.Fatalf("empty histogram should still expose _count 0:\n%s", out)
	}
	if strings.Contains(out, "quantile") {
		t.Fatalf("empty histogram must not expose quantiles:\n%s", out)
	}
}

// TestDebugServerMetricsScrape scrapes /metrics from a live debug server
// and validates every line of the response against the text-format
// grammar — the end-to-end check the issue asks for.
func TestDebugServerMetricsScrape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.tx.frames").Add(42)
	reg.Counter("net.tx.bytes").Add(98765432109)
	reg.Gauge("ug.active").Set(3)
	reg.Histogram("comm.rtt.ms", []float64{0.5, 1, 5, 50}).Observe(2.25)
	ds, err := StartDebugServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("wrong content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	checkPromGrammar(t, out)

	// Process-level series and the solver registry must both be present.
	for _, want := range []string{
		"# TYPE go_goroutines gauge\n",
		"# TYPE go_heap_alloc_bytes gauge\n",
		"# TYPE go_gc_cycles_total counter\n",
		"# TYPE go_gc_pause_seconds_total counter\n",
		"net_tx_frames 42\n",
		"net_tx_bytes 98765432109\n",
		"# TYPE comm_rtt_ms summary\n",
		"comm_rtt_ms_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestDebugServerMetricsNilRegistry: a process with no registry still
// serves valid process-level metrics.
func TestDebugServerMetricsNilRegistry(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkPromGrammar(t, string(body))
	if !strings.Contains(string(body), "go_goroutines ") {
		t.Fatalf("missing process gauges:\n%s", body)
	}
}

// TestPromBusSubscribersGauge: the bus exports its live subscriber count
// as obs.bus.subscribers, and the gauge tracks attach/detach through the
// grammar-valid exposition.
func TestPromBusSubscribersGauge(t *testing.T) {
	reg := NewRegistry()
	bus := NewBus(nil, reg)
	defer bus.Close()
	_, cancel1 := bus.Subscribe()
	_, cancel2 := bus.Subscribe()
	defer cancel2()

	render := func() string {
		var sb strings.Builder
		if err := WriteProm(&sb, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		checkPromGrammar(t, sb.String())
		return sb.String()
	}
	out := render()
	for _, want := range []string{
		"# TYPE obs_bus_subscribers gauge\n",
		"obs_bus_subscribers 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	cancel1()
	if out := render(); !strings.Contains(out, "obs_bus_subscribers 1\n") {
		t.Errorf("gauge did not track detach:\n%s", out)
	}
}

// TestStatuszIntegerFormatting pins the WriteTable satellite fix: large
// counters must render as integers, not %g scientific notation.
func TestStatuszIntegerFormatting(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.tx.bytes").Add(123456789012)
	reg.Histogram("rtt", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	if err := WriteTable(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "123456789012") {
		t.Fatalf("counter lost integer rendering:\n%s", out)
	}
	if strings.Contains(out, "e+") {
		t.Fatalf("scientific notation leaked into the table:\n%s", out)
	}
	// Histogram-derived floats keep %g.
	if !strings.Contains(out, "hist.mean") {
		t.Fatalf("missing hist.mean row:\n%s", out)
	}
}

// readSSEFrames reads SSE data frames from a stream, skipping comments,
// until n frames or EOF.
func readSSEFrames(r io.Reader, n int) ([]string, error) {
	var frames []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimPrefix(line, "data: "))
			if len(frames) == n {
				return frames, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return frames, err
	}
	return frames, fmt.Errorf("stream ended after %d frames (want %d)", len(frames), n)
}
