# Convenience targets; `make check` is the full verification gate.

.PHONY: build test lint lint-json lint-fix-list race fmt check bench-hot trace-smoke net-smoke profile-smoke telemetry-smoke serve-smoke postmortem-smoke

build:
	go build ./...

test:
	go test ./...

# lint runs the solver-aware static analyzers (see internal/analysis and
# the "Static analysis" section of README.md).
lint:
	go run ./cmd/ugolint ./...

# lint-json emits findings as a JSON array (with suggested fixes as
# replace-range edits) for editors and CI integrations. Exit status is
# still 1 when anything is found.
lint-json:
	go run ./cmd/ugolint -json ./...

# bench-hot regenerates BENCH_hotpath.json, the hot-path allocation
# ledger: the scip/lp/comm-net allocation benchmarks at HEAD~1 vs the
# working tree, side by side (see scripts/bench_hot.sh and ugolint -hot).
bench-hot:
	./scripts/bench_hot.sh

# lint-fix-list prints findings grouped by file with per-file counts —
# the triage view for working down a backlog. Always exits 0 so it can
# be run mid-cleanup.
lint-fix-list:
	-go run ./cmd/ugolint -q -group ./...

race:
	go test -race ./internal/ug/... ./internal/scip/... ./internal/serve/... ./internal/obs/...

fmt:
	gofmt -w .

check:
	./scripts/check.sh

# trace-smoke runs a small instrumented Steiner solve and validates the
# resulting JSONL event trace with ugtrace (the same gate CI applies).
trace-smoke:
	go run ./cmd/ugsteiner -instance cc3-4p -workers 2 -racing -trace /tmp/ug-smoke.trace -stats
	go run ./cmd/ugtrace -validate /tmp/ug-smoke.trace
	go run ./cmd/ugtrace /tmp/ug-smoke.trace

# net-smoke exercises the distributed path end to end: the coordinator
# self-spawns two worker processes, solves a small STP instance over
# loopback TCP (comm/net transport), leaving one Lamport-clocked trace
# per process. Each per-rank trace must validate on its own, the merged
# causal timeline must pass the cross-rank validator, and every analytics
# view must render from it. Needs a built binary: self-spawn re-invokes
# argv[0].
net-smoke:
	go build -o /tmp/ugsteiner-net ./cmd/ugsteiner
	go build -o /tmp/ugtrace-net ./cmd/ugtrace
	/tmp/ugsteiner-net -instance cc3-4p -net-procs 2 -trace /tmp/ug-net-smoke.trace -stats
	/tmp/ugtrace-net -validate /tmp/ug-net-smoke.trace
	/tmp/ugtrace-net -validate /tmp/ug-net-smoke.trace.rank1
	/tmp/ugtrace-net -validate /tmp/ug-net-smoke.trace.rank2
	/tmp/ugtrace-net -merge -validate /tmp/ug-net-smoke.trace /tmp/ug-net-smoke.trace.rank1 /tmp/ug-net-smoke.trace.rank2
	/tmp/ugtrace-net -merge -o /tmp/ug-net-smoke.merged /tmp/ug-net-smoke.trace /tmp/ug-net-smoke.trace.rank1 /tmp/ug-net-smoke.trace.rank2
	/tmp/ugtrace-net -gantt -load -critpath -bounds /tmp/ug-net-smoke.merged

# telemetry-smoke checks the whole live telemetry plane on a real solve
# run with -pprof and -watchdog: /statusz, a 1-second CPU profile,
# grammar-valid Prometheus /metrics, and five schema-valid SSE frames
# from /events, all scraped mid-solve (see scripts/profile_smoke.sh).
# profile-smoke is the historical name for the same gate.
telemetry-smoke profile-smoke:
	./scripts/profile_smoke.sh

# postmortem-smoke exercises the forensics pipeline on purpose-injected
# failures: a worker panic in an in-process solve and a watchdog stall in
# a distributed solve must each leave a bundle that ugtrace -postmortem
# validates — naming the panicking goroutine and the stalest rank
# respectively (see scripts/postmortem_smoke.sh).
postmortem-smoke:
	./scripts/postmortem_smoke.sh

# serve-smoke drives the ugserve daemon end to end over its HTTP API:
# STP + MISDP jobs solved to optimality, a duplicate submission hitting
# the presolve cache (cache=hit, presolve_seconds=0, serve_cache_hit
# incremented), five schema-valid SSE frames from a running job's
# /events stream, grammar-valid Prometheus /metrics, and a graceful
# SIGTERM drain during an active solve (see scripts/serve_smoke.sh).
serve-smoke:
	./scripts/serve_smoke.sh
