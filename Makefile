# Convenience targets; `make check` is the full verification gate.

.PHONY: build test lint lint-fix-list race fmt check

build:
	go build ./...

test:
	go test ./...

# lint runs the solver-aware static analyzers (see internal/analysis and
# the "Static analysis" section of README.md).
lint:
	go run ./cmd/ugolint ./...

# lint-fix-list prints findings grouped by file with per-file counts —
# the triage view for working down a backlog. Always exits 0 so it can
# be run mid-cleanup.
lint-fix-list:
	-go run ./cmd/ugolint -q -group ./...

race:
	go test -race ./internal/ug/... ./internal/scip/...

fmt:
	gofmt -w .

check:
	./scripts/check.sh
