# Convenience targets; `make check` is the full verification gate.

.PHONY: build test lint race fmt check

build:
	go build ./...

test:
	go test ./...

# lint runs the solver-aware static analyzers (see internal/analysis and
# the "Static analysis" section of README.md).
lint:
	go run ./cmd/ugolint ./...

race:
	go test -race ./internal/ug/... ./internal/scip/...

fmt:
	gofmt -w .

check:
	./scripts/check.sh
