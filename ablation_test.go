// Ablation benchmarks for the design choices DESIGN.md calls out: the
// extended reduction techniques (global and in-tree), racing versus
// normal ramp-up, SCIP-SDP's dual fixing, and the LP versus SDP
// relaxation approaches. Each bench reports the ablated configuration's
// effect as custom metrics rather than asserting outcomes (the paper's
// claims about these features are directional, not absolute).
package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/scip"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
	"repro/internal/ug"
)

// solveSteinerWith solves an SPG with a configurable Def/propagator.
func solveSteinerWith(noReduce bool, inTree bool, s *steiner.SPG) *scip.Solver {
	def := &steiner.Def{NoReduce: noReduce}
	data, _ := def.Presolve(s, scip.Infinity)
	prob := def.BuildModel(data.(*steiner.SPG))
	plug := steiner.NewPlugins()
	plug.Def = def
	if !inTree {
		// Disable the in-tree reduction layer by pushing its activation
		// depth beyond any realistic tree.
		plug.Propagators = []scip.Propagator{&steiner.Propagator{ReductionBudget: 400, MinDepth: 1 << 30}}
	}
	set := steiner.DefaultSettings()
	set.SepaRounds = 8
	set.MaxCutRows = 150
	solver := scip.NewSolver(prob, set, plug)
	solver.Solve()
	return solver
}

// BenchmarkAblationExtendedReductions compares presolve on/off: the
// paper's point is that PUC-family instances resist reductions, so the
// node-count effect is small there while generic instances collapse.
func BenchmarkAblationExtendedReductions(b *testing.B) {
	inst := func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 165, 23) }
	for i := 0; i < b.N; i++ {
		with := solveSteinerWith(false, true, inst())
		without := solveSteinerWith(true, true, inst())
		b.ReportMetric(float64(with.Stats.Nodes), "nodes-with-presolve")
		b.ReportMetric(float64(without.Stats.Nodes), "nodes-without-presolve")
	}
}

// BenchmarkAblationInTreeReductions measures the in-tree reduction layer
// (the paper's extended reductions deep in the B&B tree, credited for
// bip52u).
func BenchmarkAblationInTreeReductions(b *testing.B) {
	inst := func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 163, 19) }
	for i := 0; i < b.N; i++ {
		with := solveSteinerWith(false, true, inst())
		without := solveSteinerWith(false, false, inst())
		b.ReportMetric(float64(with.Stats.Nodes), "nodes-with-intree")
		b.ReportMetric(float64(without.Stats.Nodes), "nodes-without-intree")
		b.ReportMetric(float64(with.Stats.PropFixings), "prop-fixings")
	}
}

// BenchmarkAblationRacingVsNormal compares the two ramp-up modes on the
// same instance and worker count.
func BenchmarkAblationRacingVsNormal(b *testing.B) {
	inst := func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 163, 19) }
	for i := 0; i < b.N; i++ {
		normal, _, err := core.SolveParallel(steiner.NewApp(inst()), ug.Config{Workers: 4, TimeLimit: 30})
		if err != nil {
			b.Fatal(err)
		}
		racing, _, err := core.SolveParallel(steiner.NewApp(inst()), ug.Config{
			Workers: 4, TimeLimit: 30, RampUp: ug.RampUpRacing, RacingTime: 0.2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(normal.Stats.Time, "normal-sec")
		b.ReportMetric(racing.Stats.Time, "racing-sec")
	}
}

// BenchmarkAblationDualFixing measures SCIP-SDP's dual-fixing presolve.
func BenchmarkAblationDualFixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var nodes [2]int64
		for k, skip := range []bool{false, true} {
			def := &misdp.Def{SkipDualFix: skip}
			p := testsets.TTD(5, 14, 3, 1)
			data, _ := def.Presolve(p, scip.Infinity)
			prob := def.BuildModel(data.(*misdp.MISDP))
			plug := misdp.NewPlugins()
			plug.Def = def
			solver := scip.NewSolver(prob, misdp.SDPSettings(), plug)
			solver.Solve()
			nodes[k] = solver.Stats.Nodes
		}
		b.ReportMetric(float64(nodes[0]), "nodes-with-dualfix")
		b.ReportMetric(float64(nodes[1]), "nodes-without-dualfix")
	}
}

// BenchmarkAblationLPvsSDPRelaxator times the two SCIP-SDP solution
// approaches per family — the trade-off racing ramp-up arbitrates.
func BenchmarkAblationLPvsSDPRelaxator(b *testing.B) {
	families := map[string]func() *misdp.MISDP{
		"ttd": func() *misdp.MISDP { return testsets.TTD(5, 14, 3, 1) },
		"cls": func() *misdp.MISDP { return testsets.CLS(8, 11, 3, 1) },
		"mkp": func() *misdp.MISDP { return testsets.MkP(11, 3, 1) },
	}
	for i := 0; i < b.N; i++ {
		for name, build := range families {
			for _, set := range []scip.Settings{misdp.SDPSettings(), misdp.LPSettings()} {
				set.TimeLimit = 30
				solver, _, _ := core.SolveSequential(misdp.NewApp(build(), 2), set)
				b.ReportMetric(solver.Elapsed(), name+"-"+set.Name[:3]+"-sec")
			}
		}
	}
}
