// Command stpgen generates PUC-family Steiner tree instances (hypercube,
// code-cover/Hamming, bipartite) in SteinLib .stp format.
//
// Usage:
//
//	stpgen -family hc -d 6 -perturbed > hc6p.stp
//	stpgen -family cc -d 3 -a 4 -terminals 8 > cc3-4.stp
//	stpgen -family bip -terminals 16 -steiner 80 > bip.stp
//	stpgen -named hc6u > hc6u.stp
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/steiner"
	"repro/internal/steiner/puc"
)

func main() {
	var (
		family    = flag.String("family", "hc", "family: hc, cc, bip")
		named     = flag.String("named", "", "named paper-instance analogue (overrides family flags)")
		d         = flag.Int("d", 5, "dimension (hc, cc)")
		a         = flag.Int("a", 3, "alphabet size (cc)")
		terminals = flag.Int("terminals", 0, "terminal count (cc, bip, hc with -terminals)")
		steinerN  = flag.Int("steiner", 60, "Steiner-side size (bip)")
		deg       = flag.Int("deg", 3, "terminal degree (bip)")
		perturbed = flag.Bool("perturbed", false, "perturbed costs (p variant) instead of unit (u)")
		seed      = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var s *steiner.SPG
	if *named != "" {
		s = puc.Named(*named)
		if s == nil {
			fmt.Fprintf(os.Stderr, "stpgen: unknown named instance %q\n", *named)
			os.Exit(2)
		}
	} else {
		switch *family {
		case "hc":
			if *terminals > 0 {
				s = puc.HypercubeT(*d, *terminals, *perturbed, *seed)
			} else {
				s = puc.Hypercube(*d, *perturbed, *seed)
			}
		case "cc":
			t := *terminals
			if t == 0 {
				t = 8
			}
			s = puc.CodeCover(*d, *a, t, *perturbed, *seed)
		case "bip":
			t := *terminals
			if t == 0 {
				t = 16
			}
			s = puc.Bipartite(t, *steinerN, *deg, *perturbed, *seed)
		default:
			fmt.Fprintf(os.Stderr, "stpgen: unknown family %q\n", *family)
			os.Exit(2)
		}
	}
	if err := steiner.WriteSTP(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "stpgen:", err)
		os.Exit(1)
	}
}
