// Command ugmisdp is the parallel mixed-integer SDP solver — the
// ug[SCIP-SDP,*] binary. It generates an instance from one of the three
// CBLIB application families (truss topology design, cardinality-
// constrained least squares, minimum k-partitioning), then solves it
// either sequentially (LP or SDP mode) or in parallel with the racing
// LP/SDP hybrid.
//
// Usage:
//
//	ugmisdp -family ttd -workers 8
//	ugmisdp -family mkp -n 7 -k 3 -mode sdp -workers 1
//	ugmisdp -family cls -racing -workers 16
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/obs"
	"repro/internal/ug"
	"repro/internal/ug/comm"
	netcomm "repro/internal/ug/comm/net"
)

func main() {
	var (
		family     = flag.String("family", "ttd", "instance family: ttd, cls, mkp")
		n          = flag.Int("n", 0, "size parameter (bars / features / vertices; 0 = default)")
		k          = flag.Int("k", 0, "cardinality / partition classes (0 = default)")
		seed       = flag.Int64("seed", 1, "instance seed")
		workers    = flag.Int("workers", 4, "number of ParaSolvers")
		racing     = flag.Bool("racing", true, "use racing ramp-up (the LP/SDP hybrid)")
		mode       = flag.String("mode", "hybrid", "solution mode: lp, sdp, hybrid (racing)")
		timeLimit  = flag.Float64("time", 0, "time limit in seconds")
		seq        = flag.Bool("sequential", false, "run the sequential solver instead of UG")
		tracePath  = flag.String("trace", "", "write a JSONL event trace to this file (render with ugtrace)")
		stats      = flag.Bool("stats", false, "print the full run-statistics and metrics tables")
		profile    = flag.String("profile", "", "write a CPU profile to this file")
		netListen  = flag.String("net-listen", "", "run as distributed coordinator: rendezvous address to listen on (host:port, :0 = any)")
		netConnect = flag.String("net-connect", "", "run as distributed worker: coordinator address to dial")
		rank       = flag.Int("rank", 0, "this worker's rank (with -net-connect; 1-based)")
		netProcs   = flag.Int("net-procs", 0, "single-machine distributed mode: self-spawn N worker processes")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof, /statusz, Prometheus /metrics and the /events SSE stream on this address during the solve")
		watchdog   = flag.Duration("watchdog", 0, "stall watchdog: after this long without progress events, emit watchdog.stall and write a goroutine dump (0 = off)")
		forensics  = flag.String("forensics", "", "directory for post-mortem forensics bundles (default: <trace>.postmortem when -trace is set, else ug-postmortem)")

		// Fault-injection hooks for the post-mortem smoke tests — they
		// crash or stall a healthy run on purpose so the forensics
		// pipeline can be exercised end to end.
		testPanicRank = flag.Int("test-panic-rank", 0, "fault injection: this in-process worker rank panics on its first subproblem (0 = off)")
		testDelayTerm = flag.Duration("test-delay-term", 0, "fault injection: a net worker delays its first outgoing terminated frame by this long, stalling the coordinator (0 = off)")
	)
	flag.Parse()

	if *profile != "" {
		pf, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	extra := map[string]string{
		"family": *family, "n": fmt.Sprint(*n), "k": fmt.Sprint(*k),
		"seed": fmt.Sprint(*seed), "workers": fmt.Sprint(*workers),
	}
	tele := newTelemetry(*tracePath, *pprofAddr, *forensics, *watchdog, extra)
	tracer := tele.tracer
	var fault *netcomm.FaultPlan
	if *testDelayTerm > 0 {
		fault = netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagTerminated, Nth: 1, Action: netcomm.FaultDelay, Delay: *testDelayTerm,
		})
	}
	// The sequential solver has no cooperative stop channel; leaving the
	// default signal disposition there keeps ^C an immediate exit.
	var cancel <-chan struct{}
	if !*seq {
		cancel = cancelOnSignal("ugmisdp")
	}

	var inst *misdp.MISDP
	switch *family {
	case "ttd":
		bars, dim := 8, 4
		if *n > 0 {
			bars = *n
		}
		inst = testsets.TTD(dim, bars, 2, *seed)
	case "cls":
		features, kk := 6, 3
		if *n > 0 {
			features = *n
		}
		if *k > 0 {
			kk = *k
		}
		inst = testsets.CLS(features, features+2, kk, *seed)
	case "mkp":
		verts, kk := 7, 3
		if *n > 0 {
			verts = *n
		}
		if *k > 0 {
			kk = *k
		}
		inst = testsets.MkP(verts, kk, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ugmisdp: unknown family %q\n", *family)
		os.Exit(2)
	}
	mkApp := func() core.App {
		if *mode == "lp" {
			return misdp.NewAppLP(inst, 16)
		}
		return misdp.NewApp(inst, 16)
	}
	// A worker process generates the same instance from the same flags,
	// presolves it locally, and serves subproblems until termination.
	// With -trace it writes its own per-rank JSONL trace for
	// `ugtrace -merge`; with -pprof it exposes its own debug server;
	// with -watchdog it arms its own stall watchdog.
	if *netConnect != "" {
		err := core.RunNetWorker(mkApp(), core.NetRun{
			Connect: *netConnect, Rank: *rank, Seed: *seed,
			Trace: tracer, Metrics: tele.reg, Cancel: cancel,
			Bus: tele.bus, Watchdog: *watchdog, StallDumpPath: tele.dump,
			Capture: tele.capture, Fault: fault,
		})
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("instance %s: %d variables, %d blocks, %d rows\n",
		inst.Name, inst.M, len(inst.Blocks), len(inst.Rows))

	if *seq {
		set := misdp.SDPSettings()
		if *mode == "lp" {
			set = misdp.LPSettings()
		}
		set.TimeLimit = *timeLimit
		app := misdp.NewApp(inst, 4)
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Bus: tele.bus, Tracer: tracer, Quiet: *watchdog, DumpPath: tele.dump,
			Capture: tele.capture,
		})
		solver, st, _ := core.SolveSequentialTraced(app, set, tracer)
		wd.Stop()
		if err := tracer.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("status   %v\n", st)
		if solver.Incumbent() != nil {
			fmt.Printf("objective %.6g (max form)\n", -solver.Incumbent().Obj)
		}
		fmt.Printf("nodes    %d\n", solver.Stats.Nodes)
		if *stats {
			fmt.Println("\n--- solver statistics ---")
			ss := solver.Stats
			for _, row := range []struct {
				name  string
				value int64
			}{
				{"nodes", ss.Nodes},
				{"LP iterations", ss.LPIterations},
				{"cuts added", ss.CutsAdded},
				{"solutions found", ss.SolsFound},
				{"max depth", int64(ss.MaxDepth)},
				{"propagator fixings", ss.PropFixings},
			} {
				fmt.Printf("%-18s  %d\n", row.name, row.value)
			}
			ph := solver.Stats.Phases
			fmt.Printf("%-18s  LP %.3f  relax %.3f  sepa %.3f  heur %.3f  prop %.3f\n",
				"phase times (s)", ph.LP, ph.Relax, ph.Separation, ph.Heuristics, ph.Propagation)
		}
		return
	}

	app := mkApp()
	cfg := ug.Config{
		Workers: *workers, TimeLimit: *timeLimit, Trace: tracer, Metrics: tele.reg, Cancel: cancel,
		Capture: tele.capture, TestPanicRank: *testPanicRank,
	}
	if *racing || *mode == "hybrid" {
		cfg.RampUp = ug.RampUpRacing
		cfg.RacingTime = 0.3
	}
	reg := tele.reg
	var res *ug.Result
	var err error
	if *netListen != "" || *netProcs > 0 {
		workerArgs := []string{
			"-family", *family, "-n", fmt.Sprint(*n), "-k", fmt.Sprint(*k),
			"-seed", fmt.Sprint(*seed), "-mode", *mode,
		}
		if *testDelayTerm > 0 {
			workerArgs = append(workerArgs, "-test-delay-term", testDelayTerm.String())
		}
		res, _, err = core.SolveNetParallel(app, cfg, core.NetRun{
			Listen:             *netListen,
			Procs:              *netProcs,
			WorkerArgs:         workerArgs,
			Seed:               *seed,
			WorkerTraceBase:    *tracePath,
			Bus:                tele.bus,
			Watchdog:           *watchdog,
			StallDumpPath:      tele.dump,
			Capture:            tele.capture,
			WorkerForensicsDir: tele.capture.Dir,
		})
	} else {
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Bus: tele.bus, Tracer: tracer, Quiet: *watchdog, DumpPath: tele.dump,
			Capture: tele.capture,
		})
		res, _, err = core.SolveParallel(app, cfg)
		wd.Stop()
	}
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	switch {
	case res.Optimal:
		fmt.Printf("status   optimal\nobjective %.6g (max form)\n", -res.Obj)
	case res.Infeasible:
		fmt.Println("status   infeasible")
	default:
		fmt.Printf("status   interrupted (primal %.6g dual %.6g, max form)\n",
			-st.FinalPrimal, -st.FinalDual)
	}
	fmt.Printf("time     %.2fs, nodes %d, transferred %d\n", st.Time, st.TotalNodes, st.Dispatched)
	if st.RacingWinner >= 0 {
		fmt.Printf("racing   winner settings %d (%s)\n", st.RacingWinner, st.RacingWinnerName)
	}
	if *stats {
		fmt.Println("\n--- run statistics ---")
		if err := ug.FormatStats(os.Stdout, st); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- metrics ---")
		if err := obs.WriteTable(os.Stdout, reg.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

// telemetry bundles one process's observability plumbing: the tracer
// (over the recorder, the file sink, the live bus, or all three), the
// bus live subscribers attach to, the always-on flight recorder, the
// metrics registry, the forensics capturer every failure edge bundles
// through, and the watchdog's dump path.
type telemetry struct {
	tracer  *obs.Tracer
	bus     *obs.Bus
	rec     *obs.Recorder
	reg     *obs.Registry
	capture *obs.Capturer
	dump    string
}

// newTelemetry wires the telemetry plane from the CLI flags. The file
// sink (when -trace is given) stays the authoritative trace: the flight
// recorder tees in front of it (forwarding downstream first, so the
// file bytes are identical either way), and the bus tees in front of
// the recorder only when something live wants events (-pprof's /events
// stream or the -watchdog). The recorder and the metrics registry are
// always on — that is what makes a post-mortem bundle useful on a run
// that had no -trace — and the capturer is what every failure edge
// (panic, watchdog stall, run error) writes its bundle through. With
// -pprof it also starts the debug server (which lives until process
// exit) serving pprof, /statusz, /metrics and /events.
func newTelemetry(tracePath, pprofAddr, forensics string, watchdog time.Duration, extra map[string]string) telemetry {
	var t telemetry
	t.reg = obs.NewRegistry()
	var sink obs.Sink
	if tracePath != "" {
		fs, err := obs.NewFileSink(tracePath)
		if err != nil {
			fatal(err)
		}
		sink = fs
	}
	t.rec = obs.NewRecorder(sink, 0)
	sink = t.rec
	if pprofAddr != "" || watchdog > 0 {
		t.bus = obs.NewBus(sink, t.reg)
		sink = t.bus
	}
	t.tracer = obs.NewTracer(sink)
	if forensics == "" {
		forensics = "ug-postmortem"
		if tracePath != "" {
			forensics = tracePath + ".postmortem"
		}
	}
	t.capture = &obs.Capturer{Dir: forensics, Recorder: t.rec, Registry: t.reg, Extra: extra}
	if watchdog > 0 {
		t.dump = "ug-stall-goroutines.txt"
		if tracePath != "" {
			t.dump = tracePath + ".stall-goroutines"
		}
	}
	if pprofAddr != "" {
		ds, err := obs.StartDebugServer(pprofAddr, t.reg, t.bus)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/debug/pprof/, /statusz, /metrics, /events)\n", ds.Addr())
	}
	return t
}

// cancelOnSignal returns a channel closed on the first SIGINT/SIGTERM.
// The solve stops cooperatively — the coordinator runs its ordinary stop
// protocol, a net worker closes its comm after a short grace — so the
// trace file is complete (run.start … run.end) and validates instead of
// being truncated mid-write. A second signal force-exits.
func cancelOnSignal(name string) <-chan struct{} {
	cancel := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "%s: %v — stopping cooperatively (signal again to force quit)\n", name, got)
		close(cancel)
		<-sig
		os.Exit(1)
	}()
	return cancel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugmisdp:", err)
	os.Exit(1)
}
