// Command ugmisdp is the parallel mixed-integer SDP solver — the
// ug[SCIP-SDP,*] binary. It generates an instance from one of the three
// CBLIB application families (truss topology design, cardinality-
// constrained least squares, minimum k-partitioning), then solves it
// either sequentially (LP or SDP mode) or in parallel with the racing
// LP/SDP hybrid.
//
// Usage:
//
//	ugmisdp -family ttd -workers 8
//	ugmisdp -family mkp -n 7 -k 3 -mode sdp -workers 1
//	ugmisdp -family cls -racing -workers 16
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/obs"
	"repro/internal/ug"
)

func main() {
	var (
		family     = flag.String("family", "ttd", "instance family: ttd, cls, mkp")
		n          = flag.Int("n", 0, "size parameter (bars / features / vertices; 0 = default)")
		k          = flag.Int("k", 0, "cardinality / partition classes (0 = default)")
		seed       = flag.Int64("seed", 1, "instance seed")
		workers    = flag.Int("workers", 4, "number of ParaSolvers")
		racing     = flag.Bool("racing", true, "use racing ramp-up (the LP/SDP hybrid)")
		mode       = flag.String("mode", "hybrid", "solution mode: lp, sdp, hybrid (racing)")
		timeLimit  = flag.Float64("time", 0, "time limit in seconds")
		seq        = flag.Bool("sequential", false, "run the sequential solver instead of UG")
		tracePath  = flag.String("trace", "", "write a JSONL event trace to this file (render with ugtrace)")
		stats      = flag.Bool("stats", false, "print the full run-statistics and metrics tables")
		profile    = flag.String("profile", "", "write a CPU profile to this file")
		netListen  = flag.String("net-listen", "", "run as distributed coordinator: rendezvous address to listen on (host:port, :0 = any)")
		netConnect = flag.String("net-connect", "", "run as distributed worker: coordinator address to dial")
		rank       = flag.Int("rank", 0, "this worker's rank (with -net-connect; 1-based)")
		netProcs   = flag.Int("net-procs", 0, "single-machine distributed mode: self-spawn N worker processes")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof plus /statusz (live metrics) on this address during the solve")
	)
	flag.Parse()

	if *profile != "" {
		pf, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewTracer(sink)
	}

	var inst *misdp.MISDP
	switch *family {
	case "ttd":
		bars, dim := 8, 4
		if *n > 0 {
			bars = *n
		}
		inst = testsets.TTD(dim, bars, 2, *seed)
	case "cls":
		features, kk := 6, 3
		if *n > 0 {
			features = *n
		}
		if *k > 0 {
			kk = *k
		}
		inst = testsets.CLS(features, features+2, kk, *seed)
	case "mkp":
		verts, kk := 7, 3
		if *n > 0 {
			verts = *n
		}
		if *k > 0 {
			kk = *k
		}
		inst = testsets.MkP(verts, kk, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ugmisdp: unknown family %q\n", *family)
		os.Exit(2)
	}
	mkApp := func() core.App {
		if *mode == "lp" {
			return misdp.NewAppLP(inst, 16)
		}
		return misdp.NewApp(inst, 16)
	}
	// A worker process generates the same instance from the same flags,
	// presolves it locally, and serves subproblems until termination.
	// With -trace it writes its own per-rank JSONL trace for
	// `ugtrace -merge`; with -pprof it exposes its own debug server.
	if *netConnect != "" {
		wreg := startDebugServer(*pprofAddr, nil)
		err := core.RunNetWorker(mkApp(), core.NetRun{
			Connect: *netConnect, Rank: *rank, Seed: *seed,
			Trace: tracer, Metrics: wreg,
		})
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("instance %s: %d variables, %d blocks, %d rows\n",
		inst.Name, inst.M, len(inst.Blocks), len(inst.Rows))

	if *seq {
		set := misdp.SDPSettings()
		if *mode == "lp" {
			set = misdp.LPSettings()
		}
		set.TimeLimit = *timeLimit
		app := misdp.NewApp(inst, 4)
		solver, st, _ := core.SolveSequentialTraced(app, set, tracer)
		if err := tracer.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("status   %v\n", st)
		if solver.Incumbent() != nil {
			fmt.Printf("objective %.6g (max form)\n", -solver.Incumbent().Obj)
		}
		fmt.Printf("nodes    %d\n", solver.Stats.Nodes)
		if *stats {
			fmt.Println("\n--- solver statistics ---")
			ss := solver.Stats
			for _, row := range []struct {
				name  string
				value int64
			}{
				{"nodes", ss.Nodes},
				{"LP iterations", ss.LPIterations},
				{"cuts added", ss.CutsAdded},
				{"solutions found", ss.SolsFound},
				{"max depth", int64(ss.MaxDepth)},
				{"propagator fixings", ss.PropFixings},
			} {
				fmt.Printf("%-18s  %d\n", row.name, row.value)
			}
			ph := solver.Stats.Phases
			fmt.Printf("%-18s  LP %.3f  relax %.3f  sepa %.3f  heur %.3f  prop %.3f\n",
				"phase times (s)", ph.LP, ph.Relax, ph.Separation, ph.Heuristics, ph.Propagation)
		}
		return
	}

	app := mkApp()
	cfg := ug.Config{Workers: *workers, TimeLimit: *timeLimit, Trace: tracer}
	if *racing || *mode == "hybrid" {
		cfg.RampUp = ug.RampUpRacing
		cfg.RacingTime = 0.3
	}
	var reg *obs.Registry
	if *stats || *pprofAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	startDebugServer(*pprofAddr, reg)
	var res *ug.Result
	var err error
	if *netListen != "" || *netProcs > 0 {
		workerArgs := []string{
			"-family", *family, "-n", fmt.Sprint(*n), "-k", fmt.Sprint(*k),
			"-seed", fmt.Sprint(*seed), "-mode", *mode,
		}
		res, _, err = core.SolveNetParallel(app, cfg, core.NetRun{
			Listen:          *netListen,
			Procs:           *netProcs,
			WorkerArgs:      workerArgs,
			Seed:            *seed,
			WorkerTraceBase: *tracePath,
		})
	} else {
		res, _, err = core.SolveParallel(app, cfg)
	}
	if cerr := tracer.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	switch {
	case res.Optimal:
		fmt.Printf("status   optimal\nobjective %.6g (max form)\n", -res.Obj)
	case res.Infeasible:
		fmt.Println("status   infeasible")
	default:
		fmt.Printf("status   interrupted (primal %.6g dual %.6g, max form)\n",
			-st.FinalPrimal, -st.FinalDual)
	}
	fmt.Printf("time     %.2fs, nodes %d, transferred %d\n", st.Time, st.TotalNodes, st.Dispatched)
	if st.RacingWinner >= 0 {
		fmt.Printf("racing   winner settings %d (%s)\n", st.RacingWinner, st.RacingWinnerName)
	}
	if *stats {
		fmt.Println("\n--- run statistics ---")
		if err := ug.FormatStats(os.Stdout, st); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- metrics ---")
		if err := obs.WriteTable(os.Stdout, reg.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

// startDebugServer starts the -pprof debug endpoint when addr is
// non-empty and returns the registry its /statusz page serves: reg when
// one exists, otherwise a fresh registry — so a worker process (which
// never prints -stats) still exposes live transport metrics. The server
// lives until process exit.
func startDebugServer(addr string, reg *obs.Registry) *obs.Registry {
	if addr == "" {
		return reg
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ds, err := obs.StartDebugServer(addr, reg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "debug server on http://%s (/debug/pprof/, /statusz)\n", ds.Addr())
	return reg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugmisdp:", err)
	os.Exit(1)
}
