// Command benchtables regenerates every table and figure of the paper's
// evaluation section at the repository's (scaled-down) instance sizes
// and prints them in the paper's layout. Individual experiments can be
// selected; the default runs everything.
//
// Usage:
//
//	benchtables                  # all tables + figure
//	benchtables -only table4     # a single experiment
//	benchtables -quick           # reduced thread counts / time limits
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment: table1..table4, figure1")
	quick := flag.Bool("quick", false, "reduced limits (for smoke testing)")
	flag.Parse()

	want := func(name string) bool { return *only == "" || *only == name }

	t1Threads := []int{1, 2, 4, 8}
	t1Limit := 100.0
	t4Threads := []int{1, 2, 4, 8, 16}
	t4Limit := 30.0
	t4PerFamily := 6
	t2RunSec, t2Runs := 0.15, 8
	t3RunSec, t3Runs := 6.0, 3
	f1Workers, f1Ladder := 16, 16
	if *quick {
		t1Threads = []int{1, 2, 4}
		t1Limit = 15
		t4Threads = []int{1, 2, 4}
		t4Limit = 8
		t4PerFamily = 3
		t2RunSec, t2Runs = 0.4, 4
		t3RunSec, t3Runs = 2, 2
		f1Workers, f1Ladder = 8, 8
	}

	if want("table1") {
		fmt.Println("== Table 1: shared-memory ug[SCIP-Jack] scaling " +
			"(threads scaled down from the paper's 1..64)")
		rows := experiments.RunTable1(experiments.Table1Instances(), t1Threads, t1Limit)
		fmt.Println(experiments.FormatTable1(rows, t1Threads))
	}

	if want("table2") {
		fmt.Println("== Table 2: checkpoint-restart series (bip52u analogue)")
		ckpt := filepath.Join(os.TempDir(), "benchtables-t2.ckpt")
		defer os.Remove(ckpt)
		rows := experiments.RunTable2(experiments.Table2Instance(), 2, t2RunSec, t2Runs, ckpt)
		fmt.Println(experiments.FormatTable2(rows))
	}

	if want("table3") {
		fmt.Println("== Table 3: seeded racing runs improving the incumbent (hc10p analogue)")
		rows := experiments.RunTable3(experiments.Table3Instance(), 4, t3Runs, t3RunSec)
		fmt.Println(experiments.FormatTable3(rows))
	}

	if want("table4") {
		fmt.Println("== Table 4: ug[SCIP-SDP] vs sequential SCIP-SDP over the CBLIB families")
		res := experiments.RunTable4(experiments.StandardTestsets(t4PerFamily), t4Threads, t4Limit)
		fmt.Println(res.Format())
	}

	if want("figure1") {
		fmt.Println("== Figure 1: racing-winner statistics per setting " +
			"(odd settings SDP-based, even LP-based)")
		res := experiments.RunFigure1(experiments.StandardTestsets(t4PerFamily), f1Workers, f1Ladder, t4Limit)
		fmt.Println(res.Format())
	}
}
