// Command ugserve is the long-running multi-tenant solver service: an
// HTTP/JSON daemon accepting STP and MISDP instances, running them on a
// bounded priority job queue over a shared in-process worker pool, with
// an instance-keyed presolve cache and per-job live event streams.
//
// Usage:
//
//	ugserve -listen :8080 -max-concurrent 2 -cache-bytes 67108864
//
// API:
//
//	POST   /v1/jobs             submit {"kind":"stp","instance":"cc3-4p"}
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        one job's status/result
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/jobs/{id}/events per-job SSE event stream (replays the
//	                            flight-recorder tail after completion)
//	GET    /v1/jobs/{id}/debug  forensics bundle tarball (failed jobs)
//	GET    /metrics             Prometheus text exposition
//	GET    /statusz             human-readable service summary
//	GET    /debug/pprof/        live profiling
//
// SIGINT/SIGTERM drain gracefully: stop admitting, finish (or stop
// after -drain-grace) running jobs, then exit 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "HTTP listen address (host:port, :0 = any port)")
		maxConc    = flag.Int("max-concurrent", 2, "solves running at once (worker pool size)")
		queueCap   = flag.Int("queue-cap", 64, "bounded job queue capacity (submissions past it get 429)")
		cacheBytes = flag.Int64("cache-bytes", 64<<20, "presolve cache LRU byte budget (0 = unbounded)")
		defWorkers = flag.Int("workers", 2, "default ParaSolvers per job (overridable per submission)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "how long a drain lets running solves finish before stopping them")
		debugDir   = flag.String("debug-dir", "ugserve-debug", "directory for per-job forensics bundles on failed/deadline jobs (empty = disabled)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Addr:           *listen,
		MaxConcurrent:  *maxConc,
		QueueCap:       *queueCap,
		CacheBytes:     *cacheBytes,
		DefaultWorkers: *defWorkers,
		DebugDir:       *debugDir,
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "ugserve:", err)
		os.Exit(1)
	}
	fmt.Printf("ugserve listening on http://%s (POST /v1/jobs, /metrics, /statusz, /debug/pprof/)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("ugserve: %v — draining (grace %s; signal again to force quit)\n", got, *drainGrace)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ugserve: second signal, forcing exit")
		os.Exit(1)
	}()
	drained := srv.Drain(*drainGrace)
	fmt.Printf("ugserve: drained (%d running job(s) at drain start), exiting\n", drained)
}
