// Command ugsteiner is the parallel Steiner tree solver — the
// ug[SCIP-Jack,*] binary. It reads a SteinLib .stp file (or generates a
// named PUC-family analogue), runs the UG-parallelized SCIP-Jack
// pipeline, and reports the solution plus the coordination statistics
// the paper's tables are built from.
//
// Usage:
//
//	ugsteiner -file instance.stp -workers 8
//	ugsteiner -instance hc6u -workers 16 -racing
//	ugsteiner -instance bip52u -workers 8 -time 30 -checkpoint run.ckpt
//	ugsteiner -instance bip52u -workers 8 -restart run.ckpt
//
// Distributed (multi-process) mode over the comm/net TCP transport:
//
//	ugsteiner -instance hc6u -net-procs 2              # self-spawn 2 workers
//	ugsteiner -instance hc6u -net-listen :7071 -workers 2   # coordinator
//	ugsteiner -instance hc6u -net-connect host:7071 -rank 1 # worker
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
	"repro/internal/ug"
	"repro/internal/ug/comm"
)

func main() {
	var (
		file       = flag.String("file", "", "SteinLib .stp file to solve")
		instance   = flag.String("instance", "", "named PUC-family analogue (cc3-4p, cc3-5u, cc5-3p, hc6u, hc6p, hc7u, hc7p, hc10p, bip52u)")
		workers    = flag.Int("workers", 4, "number of ParaSolvers")
		racing     = flag.Bool("racing", false, "use racing ramp-up")
		timeLimit  = flag.Float64("time", 0, "time limit in seconds (0 = none)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file to write")
		restart    = flag.String("restart", "", "checkpoint file to restore")
		commKind   = flag.String("comm", "channel", "communicator: channel (shared memory) or gob (serialized, MPI-like)")
		tracePath  = flag.String("trace", "", "write a JSONL coordination-event trace to this file (render with ugtrace)")
		stats      = flag.Bool("stats", false, "print the full run-statistics and metrics tables")
		profile    = flag.String("profile", "", "write a CPU profile to this file")
		netListen  = flag.String("net-listen", "", "run as distributed coordinator: rendezvous address to listen on (host:port, :0 = any)")
		netConnect = flag.String("net-connect", "", "run as distributed worker: coordinator address to dial")
		rank       = flag.Int("rank", 0, "this worker's rank (with -net-connect; 1-based)")
		netProcs   = flag.Int("net-procs", 0, "single-machine distributed mode: self-spawn N worker processes")
		seed       = flag.Int64("seed", 1, "seed for the transport's retry jitter")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof plus /statusz (live metrics) on this address during the solve")
	)
	flag.Parse()

	if *profile != "" {
		pf, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	var spg *steiner.SPG
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		spg, err = steiner.ReadSTP(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *instance != "":
		spg = puc.Named(*instance)
		if spg == nil {
			fatal(fmt.Errorf("unknown instance %q", *instance))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	// A worker process has no output of its own: it presolves its copy of
	// the instance, serves subproblems, and exits with the coordinator.
	// With -trace it writes its own per-rank JSONL trace (the self-spawn
	// coordinator passes `-trace <base>.rank<N>` automatically) for
	// `ugtrace -merge`; with -pprof it exposes its own debug server.
	if *netConnect != "" {
		var wtrace *obs.Tracer
		if *tracePath != "" {
			sink, err := obs.NewFileSink(*tracePath)
			if err != nil {
				fatal(err)
			}
			wtrace = obs.NewTracer(sink)
		}
		wreg := startDebugServer(*pprofAddr, nil)
		err := core.RunNetWorker(steiner.NewApp(spg), core.NetRun{
			Connect: *netConnect, Rank: *rank, Seed: *seed,
			Trace: wtrace, Metrics: wreg,
		})
		if cerr := wtrace.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	cfg := ug.Config{
		Workers:        *workers,
		TimeLimit:      *timeLimit,
		CheckpointPath: *checkpoint,
		RestartFrom:    *restart,
	}
	if *racing {
		cfg.RampUp = ug.RampUpRacing
		cfg.RacingTime = 0.5
	}
	if *commKind == "gob" {
		cfg.Comm = comm.NewGobComm(*workers + 1)
	}
	if *tracePath != "" {
		sink, err := obs.NewFileSink(*tracePath)
		if err != nil {
			fatal(err)
		}
		cfg.Trace = obs.NewTracer(sink)
	}
	var reg *obs.Registry
	if *stats || *pprofAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	startDebugServer(*pprofAddr, reg)

	fmt.Printf("instance %s: %d vertices, %d edges, %d terminals\n",
		spg.Name, spg.G.AliveVertices(), spg.G.AliveEdges(), spg.NumTerminals())
	var res *ug.Result
	var factory *core.Factory
	var err error
	if *netListen != "" || *netProcs > 0 {
		workerArgs := []string{"-seed", fmt.Sprint(*seed)}
		if *file != "" {
			workerArgs = append(workerArgs, "-file", *file)
		} else {
			workerArgs = append(workerArgs, "-instance", *instance)
		}
		res, factory, err = core.SolveNetParallel(steiner.NewApp(spg), cfg, core.NetRun{
			Listen:          *netListen,
			Procs:           *netProcs,
			WorkerArgs:      workerArgs,
			Seed:            *seed,
			WorkerTraceBase: *tracePath,
		})
	} else {
		res, factory, err = core.SolveParallel(steiner.NewApp(spg), cfg)
	}
	if cerr := cfg.Trace.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	report(res, factory.ObjOffset())
	if *stats {
		fmt.Println("\n--- run statistics ---")
		if err := ug.FormatStats(os.Stdout, res.Stats); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- metrics ---")
		if err := obs.WriteTable(os.Stdout, reg.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

func report(res *ug.Result, offset float64) {
	st := res.Stats
	switch {
	case res.Optimal:
		fmt.Printf("status   optimal\nobjective %.6g\n", res.Obj+offset)
	case res.Infeasible:
		fmt.Println("status   infeasible")
	default:
		fmt.Printf("status   interrupted\nprimal   %.6g\ndual     %.6g\n",
			st.FinalPrimal+offset, st.FinalDual+offset)
	}
	fmt.Printf("time     %.2fs (root %.2fs)\n", st.Time, st.RootTime)
	fmt.Printf("nodes    %d total, %d open at end, %d transferred, %d collected\n",
		st.TotalNodes, st.OpenAtEnd, st.Dispatched, st.Collected)
	fmt.Printf("solvers  max active %d (first at %.2fs)\n", st.MaxActive, st.FirstMaxActiveTime)
	if st.CheckpointErrors > 0 {
		fmt.Printf("warning  %d checkpoint save(s) failed; the file on disk may be stale\n",
			st.CheckpointErrors)
	}
	if st.RacingWinner >= 0 {
		fmt.Printf("racing   winner settings %d (%s), solved in racing: %v\n",
			st.RacingWinner, st.RacingWinnerName, st.SolvedInRacing)
	}
	for i, r := range st.IdleRatio {
		fmt.Printf("idle[%d]  %.1f%%\n", i+1, 100*r)
	}
}

// startDebugServer starts the -pprof debug endpoint when addr is
// non-empty and returns the registry its /statusz page serves: reg when
// one exists, otherwise a fresh registry — so a worker process (which
// never prints -stats) still exposes live transport metrics. The server
// lives until process exit.
func startDebugServer(addr string, reg *obs.Registry) *obs.Registry {
	if addr == "" {
		return reg
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ds, err := obs.StartDebugServer(addr, reg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "debug server on http://%s (/debug/pprof/, /statusz)\n", ds.Addr())
	return reg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugsteiner:", err)
	os.Exit(1)
}
