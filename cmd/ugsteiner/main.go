// Command ugsteiner is the parallel Steiner tree solver — the
// ug[SCIP-Jack,*] binary. It reads a SteinLib .stp file (or generates a
// named PUC-family analogue), runs the UG-parallelized SCIP-Jack
// pipeline, and reports the solution plus the coordination statistics
// the paper's tables are built from.
//
// Usage:
//
//	ugsteiner -file instance.stp -workers 8
//	ugsteiner -instance hc6u -workers 16 -racing
//	ugsteiner -instance bip52u -workers 8 -time 30 -checkpoint run.ckpt
//	ugsteiner -instance bip52u -workers 8 -restart run.ckpt
//
// Distributed (multi-process) mode over the comm/net TCP transport:
//
//	ugsteiner -instance hc6u -net-procs 2              # self-spawn 2 workers
//	ugsteiner -instance hc6u -net-listen :7071 -workers 2   # coordinator
//	ugsteiner -instance hc6u -net-connect host:7071 -rank 1 # worker
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
	"repro/internal/ug"
	"repro/internal/ug/comm"
	netcomm "repro/internal/ug/comm/net"
)

func main() {
	var (
		file       = flag.String("file", "", "SteinLib .stp file to solve")
		instance   = flag.String("instance", "", "named PUC-family analogue (cc3-4p, cc3-5u, cc5-3p, hc6u, hc6p, hc7u, hc7p, hc10p, bip52u)")
		workers    = flag.Int("workers", 4, "number of ParaSolvers")
		racing     = flag.Bool("racing", false, "use racing ramp-up")
		timeLimit  = flag.Float64("time", 0, "time limit in seconds (0 = none)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file to write")
		restart    = flag.String("restart", "", "checkpoint file to restore")
		commKind   = flag.String("comm", "channel", "communicator: channel (shared memory) or gob (serialized, MPI-like)")
		tracePath  = flag.String("trace", "", "write a JSONL coordination-event trace to this file (render with ugtrace)")
		stats      = flag.Bool("stats", false, "print the full run-statistics and metrics tables")
		profile    = flag.String("profile", "", "write a CPU profile to this file")
		netListen  = flag.String("net-listen", "", "run as distributed coordinator: rendezvous address to listen on (host:port, :0 = any)")
		netConnect = flag.String("net-connect", "", "run as distributed worker: coordinator address to dial")
		rank       = flag.Int("rank", 0, "this worker's rank (with -net-connect; 1-based)")
		netProcs   = flag.Int("net-procs", 0, "single-machine distributed mode: self-spawn N worker processes")
		seed       = flag.Int64("seed", 1, "seed for the transport's retry jitter")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof, /statusz, Prometheus /metrics and the /events SSE stream on this address during the solve")
		watchdog   = flag.Duration("watchdog", 0, "stall watchdog: after this long without progress events, emit watchdog.stall and write a goroutine dump (0 = off)")
		forensics  = flag.String("forensics", "", "directory for post-mortem forensics bundles (default: <trace>.postmortem when -trace is set, else ug-postmortem)")

		// Fault-injection hooks for the post-mortem smoke tests — they
		// crash or stall a healthy run on purpose so the forensics
		// pipeline can be exercised end to end.
		testPanicRank = flag.Int("test-panic-rank", 0, "fault injection: this in-process worker rank panics on its first subproblem (0 = off)")
		testDelayTerm = flag.Duration("test-delay-term", 0, "fault injection: a net worker delays its first outgoing terminated frame by this long, stalling the coordinator (0 = off)")
	)
	flag.Parse()

	if *profile != "" {
		pf, err := os.Create(*profile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	var spg *steiner.SPG
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		spg, err = steiner.ReadSTP(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *instance != "":
		spg = puc.Named(*instance)
		if spg == nil {
			fatal(fmt.Errorf("unknown instance %q", *instance))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	extra := map[string]string{"seed": fmt.Sprint(*seed), "workers": fmt.Sprint(*workers)}
	if *instance != "" {
		extra["instance"] = *instance
	}
	if *file != "" {
		extra["file"] = *file
	}
	tele := newTelemetry(*tracePath, *pprofAddr, *forensics, *watchdog, extra)
	cancel := cancelOnSignal("ugsteiner")

	var fault *netcomm.FaultPlan
	if *testDelayTerm > 0 {
		fault = netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagTerminated, Nth: 1, Action: netcomm.FaultDelay, Delay: *testDelayTerm,
		})
	}

	// A worker process has no output of its own: it presolves its copy of
	// the instance, serves subproblems, and exits with the coordinator.
	// With -trace it writes its own per-rank JSONL trace (the self-spawn
	// coordinator passes `-trace <base>.rank<N>` automatically) for
	// `ugtrace -merge`; with -pprof it exposes its own debug server; with
	// -watchdog it arms its own stall watchdog.
	if *netConnect != "" {
		err := core.RunNetWorker(steiner.NewApp(spg), core.NetRun{
			Connect: *netConnect, Rank: *rank, Seed: *seed,
			Trace: tele.tracer, Metrics: tele.reg, Cancel: cancel,
			Bus: tele.bus, Watchdog: *watchdog, StallDumpPath: tele.dump,
			Capture: tele.capture, Fault: fault,
		})
		if cerr := tele.tracer.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	cfg := ug.Config{
		Workers:        *workers,
		TimeLimit:      *timeLimit,
		CheckpointPath: *checkpoint,
		RestartFrom:    *restart,
		Trace:          tele.tracer,
		Metrics:        tele.reg,
		Cancel:         cancel,
		Capture:        tele.capture,
		TestPanicRank:  *testPanicRank,
	}
	if *racing {
		cfg.RampUp = ug.RampUpRacing
		cfg.RacingTime = 0.5
	}
	if *commKind == "gob" {
		cfg.Comm = comm.NewGobComm(*workers + 1)
	}
	reg := tele.reg

	fmt.Printf("instance %s: %d vertices, %d edges, %d terminals\n",
		spg.Name, spg.G.AliveVertices(), spg.G.AliveEdges(), spg.NumTerminals())
	var res *ug.Result
	var factory *core.Factory
	var err error
	if *netListen != "" || *netProcs > 0 {
		workerArgs := []string{"-seed", fmt.Sprint(*seed)}
		if *file != "" {
			workerArgs = append(workerArgs, "-file", *file)
		} else {
			workerArgs = append(workerArgs, "-instance", *instance)
		}
		if *testDelayTerm > 0 {
			workerArgs = append(workerArgs, "-test-delay-term", testDelayTerm.String())
		}
		res, factory, err = core.SolveNetParallel(steiner.NewApp(spg), cfg, core.NetRun{
			Listen:             *netListen,
			Procs:              *netProcs,
			WorkerArgs:         workerArgs,
			Seed:               *seed,
			WorkerTraceBase:    *tracePath,
			Bus:                tele.bus,
			Watchdog:           *watchdog,
			StallDumpPath:      tele.dump,
			Capture:            tele.capture,
			WorkerForensicsDir: tele.capture.Dir,
		})
	} else {
		wd := obs.StartWatchdog(obs.WatchdogConfig{
			Bus: tele.bus, Tracer: tele.tracer, Quiet: *watchdog, DumpPath: tele.dump,
			Capture: tele.capture,
		})
		res, factory, err = core.SolveParallel(steiner.NewApp(spg), cfg)
		wd.Stop()
	}
	if cerr := cfg.Trace.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	report(res, factory.ObjOffset())
	if *stats {
		fmt.Println("\n--- run statistics ---")
		if err := ug.FormatStats(os.Stdout, res.Stats); err != nil {
			fatal(err)
		}
		fmt.Println("\n--- metrics ---")
		if err := obs.WriteTable(os.Stdout, reg.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

func report(res *ug.Result, offset float64) {
	st := res.Stats
	switch {
	case res.Optimal:
		fmt.Printf("status   optimal\nobjective %.6g\n", res.Obj+offset)
	case res.Infeasible:
		fmt.Println("status   infeasible")
	default:
		fmt.Printf("status   interrupted\nprimal   %.6g\ndual     %.6g\n",
			st.FinalPrimal+offset, st.FinalDual+offset)
	}
	fmt.Printf("time     %.2fs (root %.2fs)\n", st.Time, st.RootTime)
	fmt.Printf("nodes    %d total, %d open at end, %d transferred, %d collected\n",
		st.TotalNodes, st.OpenAtEnd, st.Dispatched, st.Collected)
	fmt.Printf("solvers  max active %d (first at %.2fs)\n", st.MaxActive, st.FirstMaxActiveTime)
	if st.CheckpointErrors > 0 {
		fmt.Printf("warning  %d checkpoint save(s) failed; the file on disk may be stale\n",
			st.CheckpointErrors)
	}
	if st.RacingWinner >= 0 {
		fmt.Printf("racing   winner settings %d (%s), solved in racing: %v\n",
			st.RacingWinner, st.RacingWinnerName, st.SolvedInRacing)
	}
	for i, r := range st.IdleRatio {
		fmt.Printf("idle[%d]  %.1f%%\n", i+1, 100*r)
	}
}

// telemetry bundles one process's observability plumbing: the tracer
// (over the recorder, the file sink, the live bus, or all three), the
// bus live subscribers attach to, the always-on flight recorder, the
// metrics registry, the forensics capturer every failure edge bundles
// through, and the watchdog's dump path.
type telemetry struct {
	tracer  *obs.Tracer
	bus     *obs.Bus
	rec     *obs.Recorder
	reg     *obs.Registry
	capture *obs.Capturer
	dump    string
}

// newTelemetry wires the telemetry plane from the CLI flags. The file
// sink (when -trace is given) stays the authoritative trace: the flight
// recorder tees in front of it (forwarding downstream first, so the
// file bytes are identical either way), and the bus tees in front of
// the recorder only when something live wants events (-pprof's /events
// stream or the -watchdog). The recorder and the metrics registry are
// always on — that is what makes a post-mortem bundle useful on a run
// that had no -trace — and the capturer is what every failure edge
// (panic, watchdog stall, run error) writes its bundle through. With
// -pprof it also starts the debug server (which lives until process
// exit) serving pprof, /statusz, /metrics and /events.
func newTelemetry(tracePath, pprofAddr, forensics string, watchdog time.Duration, extra map[string]string) telemetry {
	var t telemetry
	t.reg = obs.NewRegistry()
	var sink obs.Sink
	if tracePath != "" {
		fs, err := obs.NewFileSink(tracePath)
		if err != nil {
			fatal(err)
		}
		sink = fs
	}
	t.rec = obs.NewRecorder(sink, 0)
	sink = t.rec
	if pprofAddr != "" || watchdog > 0 {
		t.bus = obs.NewBus(sink, t.reg)
		sink = t.bus
	}
	t.tracer = obs.NewTracer(sink)
	if forensics == "" {
		forensics = "ug-postmortem"
		if tracePath != "" {
			forensics = tracePath + ".postmortem"
		}
	}
	t.capture = &obs.Capturer{Dir: forensics, Recorder: t.rec, Registry: t.reg, Extra: extra}
	if watchdog > 0 {
		t.dump = "ug-stall-goroutines.txt"
		if tracePath != "" {
			t.dump = tracePath + ".stall-goroutines"
		}
	}
	if pprofAddr != "" {
		ds, err := obs.StartDebugServer(pprofAddr, t.reg, t.bus)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/debug/pprof/, /statusz, /metrics, /events)\n", ds.Addr())
	}
	return t
}

// cancelOnSignal returns a channel closed on the first SIGINT/SIGTERM.
// The solve stops cooperatively — the coordinator runs its ordinary stop
// protocol, a net worker closes its comm after a short grace — so the
// trace file is complete (run.start … run.end) and validates instead of
// being truncated mid-write. A second signal force-exits.
func cancelOnSignal(name string) <-chan struct{} {
	cancel := make(chan struct{})
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "%s: %v — stopping cooperatively (signal again to force quit)\n", name, got)
		close(cancel)
		<-sig
		os.Exit(1)
	}()
	return cancel
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugsteiner:", err)
	os.Exit(1)
}
