// Command ugolint runs the repository's solver-aware static analyzers
// (internal/analysis) and reports findings with file:line positions.
// Exit status is 1 when any finding survives //lint:ignore filtering.
//
// Usage:
//
//	go run ./cmd/ugolint ./...                 # whole module
//	go run ./cmd/ugolint ./internal/ug/...     # one subtree
//	go run ./cmd/ugolint -analyzers floatcmp,errdrop ./...
//	go run ./cmd/ugolint -group ./...          # findings grouped by file
//	go run ./cmd/ugolint -json ./...           # machine-readable, with fixes
//	go run ./cmd/ugolint -hot ./...            # hot-path allocation report
//	go run ./cmd/ugolint -list                 # describe analyzers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list analyzers and exit")
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		quiet     = flag.Bool("q", false, "suppress the summary lines")
		group     = flag.Bool("group", false, "group findings by file for triage")
		asJSON    = flag.Bool("json", false, "emit findings as a JSON array (with suggested fixes where mechanical)")
		hot       = flag.Bool("hot", false, "hot-path mode: ranked allocation table from //ugo:hotpath roots plus hotalloc findings")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	sel, err := analysis.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugolint:", err)
		os.Exit(2)
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugolint:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugolint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := resolve(loader, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ugolint:", err)
		os.Exit(2)
	}

	broken := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "ugolint: type error in %s: %v\n", pkg.PkgPath, terr)
			broken++
		}
	}

	if *hot {
		findings, rows := analysis.RunHot(pkgs)
		if *asJSON {
			if err := writeHotJSON(os.Stdout, findings, rows); err != nil {
				fmt.Fprintln(os.Stderr, "ugolint:", err)
				os.Exit(2)
			}
		} else {
			printHotTable(rows)
			for _, f := range findings {
				fmt.Println(f)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "ugolint: %d package(s), %d hot function(s), %d finding(s)\n",
					len(pkgs), len(rows), len(findings))
			}
		}
		if len(findings) > 0 || broken > 0 {
			os.Exit(1)
		}
		return
	}

	findings := analysis.Run(pkgs, sel)
	switch {
	case *asJSON:
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "ugolint:", err)
			os.Exit(2)
		}
	case *group:
		printGrouped(findings)
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if !*quiet && !*asJSON {
		fmt.Fprintf(os.Stderr, "ugolint: %d package(s), %d finding(s)\n", len(pkgs), len(findings))
		printPerAnalyzer(sel, findings)
	}
	if len(findings) > 0 || broken > 0 {
		os.Exit(1)
	}
}

// printHotTable renders the ranked hot-region table: hot functions by
// estimated allocation cost per root iteration, then the audited
// //ugo:coldpath boundaries they reference.
func printHotTable(rows []analysis.HotRow) {
	if len(rows) == 0 {
		fmt.Println("no //ugo:hotpath roots found")
		return
	}
	fmt.Printf("%-58s %5s %12s %12s %6s  %s\n", "FUNC", "DEPTH", "ALLOCS/CALL", "SCORE", "SITES", "VIA")
	for _, r := range rows {
		if r.Depth < 0 {
			fmt.Printf("%-58s %5s %12.1f %12s %6s  coldpath: %s\n", r.Func, "cold", r.AllocsPerCall, "-", "-", r.Cold)
			continue
		}
		fmt.Printf("%-58s %5d %12.1f %12.1f %6d  %s\n", r.Func, r.Depth, r.AllocsPerCall, r.Score, r.Sites, r.Via)
	}
}

// writeHotJSON emits the hot report and findings as one JSON object.
func writeHotJSON(w io.Writer, findings []analysis.Finding, rows []analysis.HotRow) error {
	type hotRow struct {
		Func          string  `json:"func"`
		Depth         int     `json:"depth"`
		AllocsPerCall float64 `json:"allocs_per_call"`
		Score         float64 `json:"score"`
		Sites         int     `json:"sites"`
		Via           string  `json:"via,omitempty"`
		Cold          string  `json:"cold,omitempty"`
	}
	out := struct {
		Hot      []hotRow           `json:"hot"`
		Findings []analysis.Finding `json:"findings"`
	}{Hot: make([]hotRow, 0, len(rows)), Findings: findings}
	if out.Findings == nil {
		out.Findings = []analysis.Finding{}
	}
	for _, r := range rows {
		out.Hot = append(out.Hot, hotRow(r))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printPerAnalyzer writes one summary line per selected analyzer (plus
// the "lint" pseudo-analyzer for malformed directives, when it fired).
func printPerAnalyzer(sel []*analysis.Analyzer, findings []analysis.Finding) {
	counts := map[string]int{}
	for _, f := range findings {
		counts[f.Analyzer]++
	}
	for _, a := range sel {
		fmt.Fprintf(os.Stderr, "ugolint:   %-12s %d\n", a.Name, counts[a.Name])
		delete(counts, a.Name)
	}
	extra := make([]string, 0, len(counts))
	for name := range counts {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(os.Stderr, "ugolint:   %-12s %d\n", name, counts[name])
	}
}

// printGrouped writes findings grouped by file with a per-file count —
// the triage view behind `make lint-fix-list`.
func printGrouped(findings []analysis.Finding) {
	byFile := map[string][]analysis.Finding{}
	var files []string
	for _, f := range findings {
		if _, ok := byFile[f.Pos.Filename]; !ok {
			files = append(files, f.Pos.Filename)
		}
		byFile[f.Pos.Filename] = append(byFile[f.Pos.Filename], f)
	}
	sort.Strings(files)
	for _, file := range files {
		fs := byFile[file]
		fmt.Printf("%s (%d)\n", file, len(fs))
		for _, f := range fs {
			fmt.Printf("  %d:%d [%s] %s\n", f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
}

// resolve expands CLI patterns: "./..." loads the whole module,
// "dir/..." loads the subtree under dir, anything else loads a single
// package directory or import path.
func resolve(loader *analysis.Loader, patterns []string) ([]*analysis.Package, error) {
	var out []*analysis.Package
	seen := map[string]bool{}
	add := func(pkgs ...*analysis.Package) {
		for _, p := range pkgs {
			if !seen[p.PkgPath] {
				seen[p.PkgPath] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(pkgs...)
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			pkgs, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			abs, err := filepath.Abs(prefix)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range pkgs {
				if p.Dir == abs || strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("no packages match %q", pat)
			}
		default:
			pkg, err := loader.Load(pat)
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return out, nil
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
