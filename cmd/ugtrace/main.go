// Command ugtrace renders the JSONL event traces written by ugsteiner
// and ugmisdp under -trace. It validates the stream invariants (dense
// sequence numbers, monotone logical ticks, known event kinds, balanced
// collect-mode intervals) and derives the views the paper's figures are
// built from: the dual/primal bound trajectory, the busy/idle solver
// timeline, collect-mode intervals, and the racing ladder table.
//
// Usage:
//
//	ugtrace run.trace             # validate + all report sections
//	ugtrace -validate run.trace   # validation only (CI gate); exit 1 on failure
//	ugtrace -bounds run.trace     # bound trajectory only
//	ugtrace -timeline run.trace   # busy/idle solver timeline only
//	ugtrace -collect run.trace    # collect-mode intervals only
//	ugtrace -racing run.trace     # racing ladder table only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	var (
		validateOnly = flag.Bool("validate", false, "only validate the trace; exit nonzero on malformed or out-of-order events")
		bounds       = flag.Bool("bounds", false, "print the dual/primal bound trajectory")
		timeline     = flag.Bool("timeline", false, "print the busy/idle solver timeline")
		collect      = flag.Bool("collect", false, "print collect-mode intervals")
		racing       = flag.Bool("racing", false, "print the racing ladder table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ugtrace [-validate|-bounds|-timeline|-collect|-racing] trace.jsonl")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := obs.ValidateTrace(events); err != nil {
		fatal(fmt.Errorf("invalid trace: %w", err))
	}
	if *validateOnly {
		fmt.Printf("ok: %d events, %d kinds, final tick %d\n",
			len(events), countKinds(events), finalTick(events))
		return
	}

	all := !*bounds && !*timeline && !*collect && !*racing
	w := os.Stdout
	if all || *bounds {
		reportBounds(w, events)
	}
	if all || *timeline {
		reportTimeline(w, events)
	}
	if all || *collect {
		reportCollect(w, events)
	}
	if all || *racing {
		reportRacing(w, events)
	}
}

func countKinds(events []obs.Event) int {
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	return len(kinds)
}

func finalTick(events []obs.Event) int64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].Tick
}

// reportBounds prints the trajectory of the global dual and primal
// bounds over logical time — the data behind the paper's convergence
// plots. Sequential (scip.node) traces contribute their per-node bounds.
func reportBounds(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== bound trajectory ===")
	fmt.Fprintf(w, "%8s  %10s  %14s  %14s  %s\n", "tick", "wall(s)", "dual", "primal", "source")
	n := 0
	for _, e := range events {
		var src string
		switch e.Kind {
		case obs.KindDualBound:
			src = "dual-bound change"
		case obs.KindIncumbent:
			src = fmt.Sprintf("incumbent from rank %d", e.Rank)
		case obs.KindRunEnd:
			src = "final"
		case obs.KindScipNode:
			src = fmt.Sprintf("node %d", e.Sub)
		default:
			continue
		}
		fmt.Fprintf(w, "%8d  %10.3f  %14.6g  %14.6g  %s\n", e.Tick, e.Wall, e.Dual, e.Primal, src)
		n++
	}
	if n == 0 {
		fmt.Fprintln(w, "(no bound events)")
	}
	fmt.Fprintln(w)
}

// reportTimeline prints per-rank busy/idle intervals in logical time,
// plus a per-rank utilization summary. Intervals still open when the
// trace ends are closed at the final tick.
func reportTimeline(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== solver timeline (logical ticks) ===")
	type span struct{ from, to int64 }
	busySince := map[int]int64{}
	spans := map[int][]span{}
	end := finalTick(events)
	for _, e := range events {
		switch e.Kind {
		case obs.KindSolverBusy:
			busySince[e.Rank] = e.Tick
		case obs.KindSolverIdle:
			if from, ok := busySince[e.Rank]; ok {
				spans[e.Rank] = append(spans[e.Rank], span{from, e.Tick})
				delete(busySince, e.Rank)
			}
		}
	}
	for rank, from := range busySince {
		spans[rank] = append(spans[rank], span{from, end})
	}
	ranks := make([]int, 0, len(spans))
	for rank := range spans {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	if len(ranks) == 0 {
		fmt.Fprintln(w, "(no solver busy/idle events)")
		fmt.Fprintln(w)
		return
	}
	for _, rank := range ranks {
		ss := spans[rank]
		sort.Slice(ss, func(a, b int) bool { return ss[a].from < ss[b].from })
		var busy int64
		fmt.Fprintf(w, "rank %d:", rank)
		for _, s := range ss {
			fmt.Fprintf(w, " [%d,%d]", s.from, s.to)
			busy += s.to - s.from
		}
		if end > 0 {
			fmt.Fprintf(w, "  busy %.1f%% of %d ticks", 100*float64(busy)/float64(end), end)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// reportCollect prints collect-mode intervals (dynamic load balancing
// phases) with the number of nodes collected inside each.
func reportCollect(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== collect-mode intervals ===")
	open := int64(-1)
	var openDepth, nodes, total int
	n := 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindCollectStart:
			open, openDepth, nodes = e.Tick, e.Open, 0
		case obs.KindCollectNode:
			nodes++
			total++
		case obs.KindCollectStop:
			if open >= 0 {
				fmt.Fprintf(w, "ticks [%d,%d]: pool %d -> %d, %d nodes collected\n",
					open, e.Tick, openDepth, e.Open, nodes)
				n++
				open = -1
			}
		}
	}
	if open >= 0 {
		fmt.Fprintf(w, "ticks [%d,end]: pool %d -> ?, %d nodes collected (unterminated)\n",
			open, openDepth, nodes)
		n++
	}
	if n == 0 {
		fmt.Fprintf(w, "(no collect phases; %d stray collect.node events)\n", total)
	}
	fmt.Fprintln(w)
}

// reportRacing prints the racing ramp-up ladder: which settings ran on
// which rank, and who won.
func reportRacing(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== racing ladder ===")
	started := false
	byRank := map[int]string{}
	for _, e := range events {
		switch e.Kind {
		case obs.KindRacingStart:
			started = true
			fmt.Fprintf(w, "racing started at tick %d with %d rungs\n", e.Tick, e.Open)
		case obs.KindDispatch:
			if started && e.Str != "" {
				byRank[e.Rank] = e.Str
			}
		case obs.KindRacingWinner:
			ranks := make([]int, 0, len(byRank))
			for rank := range byRank {
				ranks = append(ranks, rank)
			}
			sort.Ints(ranks)
			for _, rank := range ranks {
				marker := " "
				if rank == e.Rank {
					marker = "*"
				}
				fmt.Fprintf(w, "%s rank %-3d %s\n", marker, rank, byRank[rank])
			}
			fmt.Fprintf(w, "winner: rank %d, settings %d (%s) at tick %d\n", e.Rank, e.Sub, e.Str, e.Tick)
		case obs.KindRacingDone:
			fmt.Fprintf(w, "wind-up finished at tick %d\n", e.Tick)
		}
	}
	if !started {
		fmt.Fprintln(w, "(no racing events)")
	}
	fmt.Fprintln(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugtrace:", err)
	os.Exit(1)
}
