// Command ugtrace renders the JSONL event traces written by ugsteiner
// and ugmisdp under -trace. It validates the stream invariants (dense
// sequence numbers, monotone logical ticks, known event kinds, balanced
// collect-mode intervals) and derives the views the paper's figures are
// built from: the dual/primal bound trajectory, the busy/idle solver
// timeline, collect-mode intervals, and the racing ladder table.
//
// With -merge it joins the per-rank traces of a distributed (-net-procs
// or -net-listen/-net-connect) run into one causally consistent global
// timeline, ordered by the Lamport clocks the transport piggybacks on
// every frame, and checks the cross-rank invariants (every worker event
// inside its dispatch→outcome window, collected nodes only after they
// were shipped).
//
// Usage:
//
//	ugtrace run.trace             # validate + all report sections
//	ugtrace -validate run.trace   # validation only (CI gate); exit 1 on failure
//	ugtrace -bounds run.trace     # bound trajectory only
//	ugtrace -timeline run.trace   # busy/idle solver timeline only
//	ugtrace -collect run.trace    # collect-mode intervals only
//	ugtrace -racing run.trace     # racing ladder table only
//	ugtrace -gantt run.trace      # per-rank busy/idle utilization bars
//	ugtrace -load run.trace       # CSV of in-flight and open nodes over ticks
//	ugtrace -critpath run.trace   # longest dispatch→outcome chain + idle attribution
//
//	ugtrace -postmortem bundle-dir   # validate + summarize a forensics bundle
//
//	ugtrace -merge run.trace run.trace.rank1 run.trace.rank2   # merged JSONL to stdout
//	ugtrace -merge -o merged.trace run.trace run.trace.rank*   # merged JSONL to a file
//	ugtrace -merge -validate run.trace run.trace.rank*         # cross-rank validation only
//	ugtrace -merge -gantt -critpath run.trace run.trace.rank*  # analytics on the merged timeline
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	var (
		validateOnly = flag.Bool("validate", false, "only validate the trace; exit nonzero on malformed or out-of-order events")
		bounds       = flag.Bool("bounds", false, "print the dual/primal bound trajectory")
		timeline     = flag.Bool("timeline", false, "print the busy/idle solver timeline")
		collect      = flag.Bool("collect", false, "print collect-mode intervals")
		racing       = flag.Bool("racing", false, "print the racing ladder table")
		gantt        = flag.Bool("gantt", false, "print per-rank busy/idle utilization bars")
		loadCSV      = flag.Bool("load", false, "print a CSV of in-flight and open node counts over ticks")
		critpath     = flag.Bool("critpath", false, "print the longest dispatch→outcome chain and per-rank idle attribution")
		merge        = flag.Bool("merge", false, "merge multiple per-rank traces into one causal timeline (Lamport-clock order)")
		output       = flag.String("o", "", "with -merge: write the merged JSONL trace to this file")
		frames       = flag.Bool("frames", false, "validate a captured /events SSE frame log: each line (after any 'data: ' prefix) must parse as a schema-known event; stream invariants are not checked")
		postmortem   = flag.Bool("postmortem", false, "validate and summarize a forensics bundle directory (written on panic, stall, run error or failed job)")
	)
	flag.Parse()
	if *postmortem {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ugtrace -postmortem <bundle-dir>")
			os.Exit(2)
		}
		runPostmortem(flag.Arg(0))
		return
	}
	if *frames {
		runFrames()
		return
	}
	if *merge {
		runMerge(*validateOnly, *output, *bounds, *timeline, *collect, *racing, *gantt, *loadCSV, *critpath)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ugtrace [-validate|-bounds|-timeline|-collect|-racing|-gantt|-load|-critpath] trace.jsonl")
		fmt.Fprintln(os.Stderr, "       ugtrace -merge [-o merged.jsonl] [flags] coord.jsonl rank1.jsonl ...")
		os.Exit(2)
	}

	events := readTraceFile(flag.Arg(0))
	if err := obs.ValidateTrace(events); err != nil {
		fatal(fmt.Errorf("invalid trace: %w", err))
	}
	if err := validateComplete(events); err != nil {
		fatal(fmt.Errorf("invalid trace: %w", err))
	}
	if *validateOnly {
		fmt.Printf("ok: %d events, %d kinds, final tick %d\n",
			len(events), countKinds(events), finalTick(events))
		return
	}

	all := !*bounds && !*timeline && !*collect && !*racing && !*gantt && !*loadCSV && !*critpath
	w := os.Stdout
	if all || *bounds {
		reportBounds(w, events)
	}
	if all || *timeline {
		reportTimeline(w, events)
	}
	if all || *collect {
		reportCollect(w, events)
	}
	if all || *racing {
		reportRacing(w, events)
	}
	if *gantt {
		reportGantt(w, events)
	}
	if *loadCSV {
		reportLoad(w, events)
	}
	if *critpath {
		reportCritpath(w, events)
	}
}

// runMerge is the -merge mode: read every per-rank trace, validate each
// in isolation, join them into the global Lamport-clock order, validate
// the cross-rank invariants, and either emit the merged JSONL (to -o or
// stdout) or run the requested analytics on the merged timeline.
func runMerge(validateOnly bool, output string, bounds, timeline, collect, racing, gantt, loadCSV, critpath bool) {
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: ugtrace -merge [-o merged.jsonl] [flags] coord.jsonl rank1.jsonl ...")
		os.Exit(2)
	}
	traces := make([][]obs.Event, 0, flag.NArg())
	for _, path := range flag.Args() {
		events := readTraceFile(path)
		if err := obs.ValidateTrace(events); err != nil {
			fatal(fmt.Errorf("%s: invalid trace: %w", path, err))
		}
		if err := validateComplete(events); err != nil {
			fatal(fmt.Errorf("%s: invalid trace: %w", path, err))
		}
		traces = append(traces, events)
	}
	merged, err := obs.MergeTraces(traces...)
	if err != nil {
		fatal(err)
	}
	if err := obs.ValidateMergedTrace(merged); err != nil {
		fatal(fmt.Errorf("merged trace: %w", err))
	}
	if validateOnly {
		fmt.Printf("ok: merged %d events from %d traces, %d kinds, final clock %d\n",
			len(merged), len(traces), countKinds(merged), finalTick(merged))
		return
	}
	if output != "" {
		if err := writeTraceFile(output, merged); err != nil {
			fatal(err)
		}
	}
	anyReport := bounds || timeline || collect || racing || gantt || loadCSV || critpath
	if !anyReport {
		if output == "" {
			if err := writeTrace(os.Stdout, merged); err != nil {
				fatal(err)
			}
		}
		return
	}
	w := os.Stdout
	if bounds {
		reportBounds(w, merged)
	}
	if timeline {
		reportTimeline(w, merged)
	}
	if collect {
		reportCollect(w, merged)
	}
	if racing {
		reportRacing(w, merged)
	}
	if gantt {
		reportGantt(w, merged)
	}
	if loadCSV {
		reportLoad(w, merged)
	}
	if critpath {
		reportCritpath(w, merged)
	}
}

// runFrames is the -frames mode: validate a log of frames captured from
// the live /events SSE stream. Unlike a trace file, a captured window
// starts at an arbitrary sequence number and may have holes (the bus
// drops oldest on backpressure), so only per-event validity is checked:
// each non-comment line must parse under the trace codec and carry a
// schema-known kind. This is the check the telemetry smoke test applies
// to frames scraped mid-solve.
func runFrames() {
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ugtrace -frames frames.log")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	n, line := 0, 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		raw = strings.TrimPrefix(raw, "data: ")
		if raw == "" || strings.HasPrefix(raw, ":") {
			continue // SSE keepalive comment or frame separator
		}
		ev, err := obs.ParseLine([]byte(raw))
		if err != nil {
			fatal(fmt.Errorf("frame line %d: %w", line, err))
		}
		if !obs.KnownKind(ev.Kind) {
			fatal(fmt.Errorf("frame line %d: unknown event kind %q", line, ev.Kind))
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if n == 0 {
		fatal(fmt.Errorf("no event frames in %s", flag.Arg(0)))
	}
	fmt.Printf("ok: %d event frames\n", n)
}

// readTraceFile loads one JSONL trace, treating a read error — including
// the partial-trailing-record truncation ReadTrace detects — as fatal.
func readTraceFile(path string) []obs.Event {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return events
}

// validateComplete checks run-lifecycle completeness on top of
// obs.ValidateTrace: a trace that opens a run (run.start) must close it
// (run.end) — a missing run.end means the writing process died mid-solve
// or the file was cut short. Worker traces have no run lifecycle (they
// open with comm.connect) and pass vacuously.
func validateComplete(events []obs.Event) error {
	started, ended := false, false
	for _, e := range events {
		switch e.Kind {
		case obs.KindRunStart:
			started = true
		case obs.KindRunEnd:
			ended = true
		}
	}
	if started && !ended {
		return fmt.Errorf("run.start without run.end — the run did not finish (process died or trace cut short)")
	}
	return nil
}

// writeTraceFile writes events as JSONL to path.
func writeTraceFile(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = writeTrace(f, events)
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// writeTrace streams events as JSONL — the same record layout the
// tracer's file sink produces, so the output is itself a valid ugtrace
// input.
func writeTrace(w io.Writer, events []obs.Event) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, ev := range events {
		buf = ev.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func countKinds(events []obs.Event) int {
	kinds := map[string]bool{}
	for _, e := range events {
		kinds[e.Kind] = true
	}
	return len(kinds)
}

func finalTick(events []obs.Event) int64 {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)-1].Tick
}

// reportBounds prints the trajectory of the global dual and primal
// bounds over logical time — the data behind the paper's convergence
// plots. Sequential (scip.node) traces contribute their per-node bounds.
func reportBounds(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== bound trajectory ===")
	fmt.Fprintf(w, "%8s  %10s  %14s  %14s  %s\n", "tick", "wall(s)", "dual", "primal", "source")
	n := 0
	for _, e := range events {
		var src string
		switch e.Kind {
		case obs.KindDualBound:
			src = "dual-bound change"
		case obs.KindIncumbent:
			src = fmt.Sprintf("incumbent from rank %d", e.Rank)
		case obs.KindRunEnd:
			src = "final"
		case obs.KindScipNode:
			src = fmt.Sprintf("node %d", e.Sub)
		default:
			continue
		}
		fmt.Fprintf(w, "%8d  %10.3f  %14.6g  %14.6g  %s\n", e.Tick, e.Wall, e.Dual, e.Primal, src)
		n++
	}
	if n == 0 {
		fmt.Fprintln(w, "(no bound events)")
	}
	fmt.Fprintln(w)
}

// busySpans reconstructs per-rank busy intervals from the coordinator's
// solver.busy/solver.idle events, closing any interval still open at
// the final tick. Shared by the timeline, gantt, and critpath reports.
func busySpans(events []obs.Event) (map[int][]tickSpan, int64) {
	busySince := map[int]int64{}
	spans := map[int][]tickSpan{}
	end := finalTick(events)
	for _, e := range events {
		switch e.Kind {
		case obs.KindSolverBusy:
			busySince[e.Rank] = e.Tick
		case obs.KindSolverIdle:
			if from, ok := busySince[e.Rank]; ok {
				spans[e.Rank] = append(spans[e.Rank], tickSpan{from, e.Tick})
				delete(busySince, e.Rank)
			}
		}
	}
	for rank, from := range busySince {
		spans[rank] = append(spans[rank], tickSpan{from, end})
	}
	for _, ss := range spans {
		sort.Slice(ss, func(a, b int) bool { return ss[a].from < ss[b].from })
	}
	return spans, end
}

// tickSpan is a half-open [from,to] interval in logical ticks.
type tickSpan struct{ from, to int64 }

// sortedRanks returns the keys of a per-rank map in ascending order, so
// every report walks ranks deterministically.
func sortedRanks[V any](m map[int]V) []int {
	ranks := make([]int, 0, len(m))
	for rank := range m {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	return ranks
}

// reportTimeline prints per-rank busy/idle intervals in logical time,
// plus a per-rank utilization summary. Intervals still open when the
// trace ends are closed at the final tick.
func reportTimeline(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== solver timeline (logical ticks) ===")
	spans, end := busySpans(events)
	ranks := sortedRanks(spans)
	if len(ranks) == 0 {
		fmt.Fprintln(w, "(no solver busy/idle events)")
		fmt.Fprintln(w)
		return
	}
	for _, rank := range ranks {
		var busy int64
		fmt.Fprintf(w, "rank %d:", rank)
		for _, s := range spans[rank] {
			fmt.Fprintf(w, " [%d,%d]", s.from, s.to)
			busy += s.to - s.from
		}
		if end > 0 {
			fmt.Fprintf(w, "  busy %.1f%% of %d ticks", 100*float64(busy)/float64(end), end)
		}
		fmt.Fprintln(w)
	}
	for _, e := range events {
		if e.Kind == obs.KindWatchdogStall {
			fmt.Fprintf(w, "STALL at tick %d (wall %.1fs): %d rank(s) quiet, stalest rank %d — %s\n",
				e.Tick, e.Wall, e.Open, e.Rank, e.Str)
		}
	}
	fmt.Fprintln(w)
}

// reportGantt renders the busy/idle timeline as fixed-width utilization
// bars — one row per rank, '#' where the rank was solving a subproblem
// and '.' where it sat idle — so a merged distributed trace shows the
// load balance of the whole run at a glance.
func reportGantt(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== gantt (per-rank busy/idle) ===")
	spans, end := busySpans(events)
	ranks := sortedRanks(spans)
	if len(ranks) == 0 || end <= 0 {
		fmt.Fprintln(w, "(no solver busy/idle events)")
		fmt.Fprintln(w)
		return
	}
	const width = 60
	for _, rank := range ranks {
		bar := make([]byte, width)
		for i := range bar {
			bar[i] = '.'
		}
		var busy int64
		for _, s := range spans[rank] {
			busy += s.to - s.from
			lo := int(s.from * width / end)
			hi := int(s.to * width / end)
			if hi <= lo {
				hi = lo + 1 // a short span still shows one cell
			}
			for i := lo; i < hi && i < width; i++ {
				bar[i] = '#'
			}
		}
		fmt.Fprintf(w, "rank %-3d |%s| busy %5.1f%%\n", rank, bar, 100*float64(busy)/float64(end))
	}
	fmt.Fprintf(w, "ticks 0..%d, one cell = %.1f ticks\n\n", end, float64(end)/width)
}

// reportLoad prints a CSV of the solver load over logical time: one row
// per load-changing event with the number of subproblems in flight
// (dispatched, outcome pending) and the total open nodes last reported
// by the workers. Plot tick against either column for the paper's
// load-over-time figures.
func reportLoad(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "tick,inflight,open")
	inflight := 0
	perRankOpen := map[int]int{}
	total := 0
	recompute := func() {
		total = 0
		for _, n := range perRankOpen {
			total += n
		}
	}
	n := 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindDispatch:
			inflight++
		case obs.KindOutcome:
			inflight--
			perRankOpen[e.Rank] = e.Open
			recompute()
		case obs.KindStatus:
			perRankOpen[e.Rank] = e.Open
			recompute()
		default:
			continue
		}
		fmt.Fprintf(w, "%d,%d,%d\n", e.Tick, inflight, total)
		n++
	}
	if n == 0 {
		fmt.Fprintln(os.Stderr, "ugtrace: warning: no dispatch/outcome/status events for -load")
	}
}

// reportCritpath reconstructs the dispatch→outcome intervals (matched
// per rank in FIFO order — the coordinator keeps at most one subproblem
// in flight per rank), finds the longest chain of causally ordered
// intervals by total duration, and attributes idle time per rank. The
// chain is the run's critical path: the sequence of subproblem solves
// that bounded the makespan.
func reportCritpath(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== critical path (dispatch→outcome chains) ===")
	type interval struct {
		rank     int
		sub      int64
		from, to int64
	}
	pending := map[int][]interval{}
	var ivs []interval
	for _, e := range events {
		switch e.Kind {
		case obs.KindDispatch:
			pending[e.Rank] = append(pending[e.Rank], interval{rank: e.Rank, sub: e.Sub, from: e.Tick})
		case obs.KindOutcome:
			if q := pending[e.Rank]; len(q) > 0 {
				iv := q[0]
				pending[e.Rank] = q[1:]
				iv.to = e.Tick
				ivs = append(ivs, iv)
			}
		}
	}
	if len(ivs) == 0 {
		fmt.Fprintln(w, "(no completed dispatch→outcome intervals)")
		fmt.Fprintln(w)
		return
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].from < ivs[b].from })
	// Longest chain of non-overlapping (causally ordered) intervals by
	// total covered ticks; O(n²) is fine at trace sizes.
	best := make([]int64, len(ivs))
	prev := make([]int, len(ivs))
	argmax := 0
	for i, iv := range ivs {
		best[i] = iv.to - iv.from
		prev[i] = -1
		for j := 0; j < i; j++ {
			if ivs[j].to <= iv.from && best[j]+iv.to-iv.from > best[i] {
				best[i] = best[j] + iv.to - iv.from
				prev[i] = j
			}
		}
		if best[i] > best[argmax] {
			argmax = i
		}
	}
	var chain []interval
	for i := argmax; i >= 0; i = prev[i] {
		chain = append(chain, ivs[i])
	}
	for a, b := 0, len(chain)-1; a < b; a, b = a+1, b-1 {
		chain[a], chain[b] = chain[b], chain[a]
	}
	end := finalTick(events)
	fmt.Fprintf(w, "%d intervals, longest chain %d links covering %d of %d ticks (%.1f%%)\n",
		len(ivs), len(chain), best[argmax], end, pct(best[argmax], end))
	for _, iv := range chain {
		fmt.Fprintf(w, "  rank %-3d sub %-6d ticks [%d,%d] (%d)\n", iv.rank, iv.sub, iv.from, iv.to, iv.to-iv.from)
	}
	// Idle attribution: ticks each rank spent without a subproblem in
	// flight — where extra parallel work could have gone.
	busy := map[int]int64{}
	for _, iv := range ivs {
		busy[iv.rank] += iv.to - iv.from
	}
	fmt.Fprintln(w, "idle attribution:")
	for _, rank := range sortedRanks(busy) {
		fmt.Fprintf(w, "  rank %-3d busy %d ticks, idle %d ticks (%.1f%% idle)\n",
			rank, busy[rank], end-busy[rank], pct(end-busy[rank], end))
	}
	fmt.Fprintln(w)
}

// pct renders a/b as a percentage, tolerating b == 0.
func pct(a, b int64) float64 {
	if b <= 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// reportCollect prints collect-mode intervals (dynamic load balancing
// phases) with the number of nodes collected inside each.
func reportCollect(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== collect-mode intervals ===")
	open := int64(-1)
	var openDepth, nodes, total int
	n := 0
	for _, e := range events {
		switch e.Kind {
		case obs.KindCollectStart:
			open, openDepth, nodes = e.Tick, e.Open, 0
		case obs.KindCollectNode:
			nodes++
			total++
		case obs.KindCollectStop:
			if open >= 0 {
				fmt.Fprintf(w, "ticks [%d,%d]: pool %d -> %d, %d nodes collected\n",
					open, e.Tick, openDepth, e.Open, nodes)
				n++
				open = -1
			}
		}
	}
	if open >= 0 {
		fmt.Fprintf(w, "ticks [%d,end]: pool %d -> ?, %d nodes collected (unterminated)\n",
			open, openDepth, nodes)
		n++
	}
	if n == 0 {
		fmt.Fprintf(w, "(no collect phases; %d stray collect.node events)\n", total)
	}
	fmt.Fprintln(w)
}

// reportRacing prints the racing ramp-up ladder: which settings ran on
// which rank, and who won.
func reportRacing(w io.Writer, events []obs.Event) {
	fmt.Fprintln(w, "=== racing ladder ===")
	started := false
	byRank := map[int]string{}
	for _, e := range events {
		switch e.Kind {
		case obs.KindRacingStart:
			started = true
			fmt.Fprintf(w, "racing started at tick %d with %d rungs\n", e.Tick, e.Open)
		case obs.KindDispatch:
			if started && e.Str != "" {
				byRank[e.Rank] = e.Str
			}
		case obs.KindRacingWinner:
			for _, rank := range sortedRanks(byRank) {
				marker := " "
				if rank == e.Rank {
					marker = "*"
				}
				fmt.Fprintf(w, "%s rank %-3d %s\n", marker, rank, byRank[rank])
			}
			fmt.Fprintf(w, "winner: rank %d, settings %d (%s) at tick %d\n", e.Rank, e.Sub, e.Str, e.Tick)
		case obs.KindRacingDone:
			fmt.Fprintf(w, "wind-up finished at tick %d\n", e.Tick)
		}
	}
	if !started {
		fmt.Fprintln(w, "(no racing events)")
	}
	fmt.Fprintln(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ugtrace:", err)
	os.Exit(1)
}
