package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// postmortemWindow is how many trailing events the timeline section
// renders — enough to see what the process was doing when it died
// without scrolling past the diagnosis.
const postmortemWindow = 12

// postmortemProgress mirrors the watchdog's notion of progress: the
// event kinds whose Rank field identifies a working solver, used for
// the per-rank last-activity table.
var postmortemProgress = map[string]bool{
	obs.KindDispatch: true, obs.KindOutcome: true, obs.KindStatus: true,
	obs.KindIncumbent: true, obs.KindWorkerShip: true, obs.KindWorkerSol: true,
	obs.KindCollectNode: true, obs.KindScipNode: true,
}

// runPostmortem is the -postmortem mode: validate a forensics bundle
// directory written by the obs.Capturer (on a panic, watchdog stall,
// run error or failed ugserve job) and render the diagnosis — what
// triggered the capture, the panicking goroutine if any, the last
// bounds, per-rank last activity, and the final window of events. One
// command from "it died" to knowing why; exits non-zero on a bundle
// that fails validation.
func runPostmortem(dir string) {
	b, err := obs.ReadBundle(dir)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	m := b.Manifest
	fmt.Fprintf(w, "=== post-mortem bundle %s ===\n", b.Dir)
	fmt.Fprintf(w, "trigger:    %s — %s\n", m.Reason, m.Detail)
	fmt.Fprintf(w, "captured:   %s (pid %d on %s)\n", m.Time, m.PID, m.Hostname)
	args := m.Args
	if len(args) > 0 {
		args = args[1:]
	}
	fmt.Fprintf(w, "process:    %s %v (%s)\n", m.Executable, args, m.GoVersion)
	for k, v := range m.Extra {
		fmt.Fprintf(w, "extra:      %s = %s\n", k, v)
	}
	if b.PanicValue != "" {
		fmt.Fprintf(w, "panic:      %s\n", b.PanicValue)
		fmt.Fprintf(w, "goroutine:  %s (full stack in %s/panic.txt)\n", b.PanicGoroutine, b.Dir)
	}
	fmt.Fprintln(w)

	reportLastBounds(w, b.Events)
	reportLastActivity(w, b.Events)
	reportFinalWindow(w, b.Events)
	fmt.Fprintf(w, "ok: bundle valid, %d events\n", len(b.Events))
}

// reportLastBounds prints the final dual/primal bounds seen in the
// recorded window (if any bound-carrying event made it in).
func reportLastBounds(w io.Writer, events []obs.Event) {
	var last *obs.Event
	for i := range events {
		switch events[i].Kind {
		case obs.KindDualBound, obs.KindIncumbent, obs.KindRunEnd, obs.KindScipNode:
			last = &events[i]
		}
	}
	fmt.Fprintln(w, "=== last bounds ===")
	if last == nil {
		fmt.Fprintln(w, "(no bound events in the recorded window)")
	} else {
		fmt.Fprintf(w, "tick %d (%s): dual %.6g, primal %.6g\n", last.Tick, last.Kind, last.Dual, last.Primal)
	}
	fmt.Fprintln(w)
}

// reportLastActivity prints each rank's last progress event — the
// post-mortem analogue of the watchdog's per-rank staleness summary —
// and re-surfaces any watchdog.stall event the window caught.
func reportLastActivity(w io.Writer, events []obs.Event) {
	lastTick := map[int]int64{}
	lastKind := map[int]string{}
	for _, e := range events {
		if postmortemProgress[e.Kind] {
			lastTick[e.Rank] = e.Tick
			lastKind[e.Rank] = e.Kind
		}
	}
	fmt.Fprintln(w, "=== per-rank last activity ===")
	if len(lastTick) == 0 {
		fmt.Fprintln(w, "(no progress events in the recorded window)")
	}
	for _, rank := range sortedRanks(lastTick) {
		fmt.Fprintf(w, "rank %-3d last seen at tick %d (%s)\n", rank, lastTick[rank], lastKind[rank])
	}
	for _, e := range events {
		if e.Kind == obs.KindWatchdogStall {
			fmt.Fprintf(w, "STALL at tick %d: %d rank(s) quiet, stalest rank %d — %s\n",
				e.Tick, e.Open, e.Rank, e.Str)
		}
	}
	fmt.Fprintln(w)
}

// reportFinalWindow renders the trailing events of the recorded tail.
func reportFinalWindow(w io.Writer, events []obs.Event) {
	fmt.Fprintf(w, "=== final timeline window (last %d of %d events) ===\n",
		min(postmortemWindow, len(events)), len(events))
	start := len(events) - postmortemWindow
	if start < 0 {
		start = 0
	}
	for _, e := range events[start:] {
		fmt.Fprintf(w, "seq %-6d tick %-6d %-14s rank %-3d", e.Seq, e.Tick, e.Kind, e.Rank)
		if e.Str != "" {
			fmt.Fprintf(w, " %s", e.Str)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
