#!/usr/bin/env bash
# check.sh — the repo's one-command verification gate.
#
# Runs, in order:
#   1. gofmt -l          formatting drift
#   2. go vet ./...      the stock toolchain analyzers
#   3. go build ./...    everything compiles
#   4. ugolint ./...     the solver-aware analyzers (internal/analysis),
#                        then the -json emitter over the same tree so
#                        the machine-readable path cannot rot, then the
#                        -hot allocation gate over the //ugo:hotpath region
#   5. go test -race     the concurrency-sensitive packages
#   6. go test ./...     the full tier-1 suite (includes the ugolint
#                        selfcheck via internal/analysis)
#
# Exits non-zero on the first failure.
set -u
cd "$(dirname "$0")/.."

fail=0
step() {
    echo "== $*"
}

step "gofmt -l"
unformatted=$(gofmt -l . 2>&1)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:"
    echo "$unformatted"
    fail=1
fi

step "go vet ./..."
go vet ./... || fail=1

step "go build ./..."
go build ./... || fail=1

step "ugolint ./..."
go run ./cmd/ugolint ./... || fail=1

step "ugolint -json ./..."
# The JSON emitter is the editor/CI integration surface; run it over the
# same tree (output discarded — the human-readable step above already
# showed any findings) so it fails loudly if findings exist or the
# encoder breaks.
go run ./cmd/ugolint -json ./... >/dev/null || fail=1

step "ugolint -hot ./..."
# The hot-path allocation gate: any unsanctioned allocation inside the
# //ugo:hotpath region fails. The ranked table is noise when clean, so
# capture it and replay only on failure.
hotout=$(go run ./cmd/ugolint -hot ./...) || { echo "$hotout"; fail=1; }

step "go test -race ./internal/ug/... ./internal/scip/... ./internal/serve/... ./internal/obs/..."
go test -race ./internal/ug/... ./internal/scip/... ./internal/serve/... ./internal/obs/... || fail=1

step "go test ./..."
go test ./... || fail=1

if [ "$fail" -ne 0 ]; then
    echo "check: FAILED"
    exit 1
fi
echo "check: OK"
