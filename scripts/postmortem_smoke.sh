#!/usr/bin/env bash
# postmortem_smoke.sh — end-to-end smoke test for the black-box flight
# recorder and the forensics bundle pipeline (DESIGN.md §7.6).
#
# Two deliberately broken runs, each of which must leave a bundle that
# `ugtrace -postmortem` validates:
#
#   1. Panic: an in-process racing solve where worker rank 1 panics on
#      its first subproblem (-test-panic-rank). The process must exit
#      non-zero AND leave a "panic" bundle whose panic.txt names the
#      panicking goroutine.
#
#   2. Stall: a 3-process distributed solve (-net-procs 2) where the
#      workers delay their first terminated frame (-test-delay-term),
#      going quiet long enough for the coordinator's 1s watchdog to
#      fire. The run completes after the delay, but a "stall" bundle
#      must exist whose manifest detail names the stalest rank. The
#      self-spawned workers share the forensics directory (bundle names
#      embed the pid) and may write their own stall bundles — every
#      bundle found must validate.
#
# CI uploads the bundle directories as an artifact on failure and
# success alike, so a broken pipeline is diagnosable from the run.
set -euo pipefail
cd "$(dirname "$0")/.."

PANIC_DIR=/tmp/ug-postmortem-smoke-panic
STALL_DIR=/tmp/ug-postmortem-smoke-stall
rm -rf "$PANIC_DIR" "$STALL_DIR"

go build -o /tmp/ugsteiner-pm ./cmd/ugsteiner
go build -o /tmp/ugtrace-pm ./cmd/ugtrace

# --- scenario 1: worker panic -------------------------------------------
# Racing ramp-up hands every rank a subproblem, so the injected panic on
# rank 1 fires deterministically. The panic must still crash the process.
if /tmp/ugsteiner-pm -instance cc3-4p -workers 2 -racing \
    -test-panic-rank 1 -forensics "$PANIC_DIR" \
    >/tmp/ug-postmortem-smoke-panic.out 2>&1; then
    echo "postmortem-smoke: panic-injected run exited 0 (panic swallowed?)" >&2
    cat /tmp/ug-postmortem-smoke-panic.out >&2
    exit 1
fi

panic_bundles=("$PANIC_DIR"/panic-*)
if [ ! -d "${panic_bundles[0]}" ]; then
    echo "postmortem-smoke: no panic bundle under $PANIC_DIR" >&2
    cat /tmp/ug-postmortem-smoke-panic.out >&2
    exit 1
fi
for b in "${panic_bundles[@]}"; do
    /tmp/ugtrace-pm -postmortem "$b" || {
        echo "postmortem-smoke: panic bundle $b failed validation" >&2
        exit 1
    }
done
grep -q '^goroutine ' "${panic_bundles[0]}/panic.txt" || {
    echo "postmortem-smoke: panic.txt does not name the panicking goroutine:" >&2
    cat "${panic_bundles[0]}/panic.txt" >&2
    exit 1
}
grep -q 'test-injected worker panic' "${panic_bundles[0]}/panic.txt" || {
    echo "postmortem-smoke: panic.txt missing the injected panic value" >&2
    exit 1
}

# --- scenario 2: distributed stall --------------------------------------
# The delayed terminated frame silences the workers' data channel while
# heartbeats keep the links alive — exactly the "alive but not working"
# stall the watchdog exists to catch. The run then finishes normally.
/tmp/ugsteiner-pm -instance cc3-4p -net-procs 2 -watchdog 1s \
    -test-delay-term 5s -forensics "$STALL_DIR" \
    >/tmp/ug-postmortem-smoke-stall.out 2>&1 || {
    echo "postmortem-smoke: stall-injected run failed outright" >&2
    cat /tmp/ug-postmortem-smoke-stall.out >&2
    exit 1
}

stall_bundles=("$STALL_DIR"/stall-*)
if [ ! -d "${stall_bundles[0]}" ]; then
    echo "postmortem-smoke: no stall bundle under $STALL_DIR" >&2
    cat /tmp/ug-postmortem-smoke-stall.out >&2
    exit 1
fi
for b in "${stall_bundles[@]}"; do
    /tmp/ugtrace-pm -postmortem "$b" || {
        echo "postmortem-smoke: stall bundle $b failed validation" >&2
        exit 1
    }
done
grep -l 'stalest rank' "$STALL_DIR"/stall-*/manifest.json >/dev/null || {
    echo "postmortem-smoke: no stall bundle names the stalest rank" >&2
    exit 1
}

echo "postmortem-smoke: ok (${#panic_bundles[@]} panic bundle(s), ${#stall_bundles[@]} stall bundle(s))"
