#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test for the ugserve service plane.
#
# Starts the daemon on a fixed loopback port and drives the full job
# lifecycle through the public API:
#
#   1. submit one STP job and one MISDP job, wait for both to finish
#      optimal (first submissions: presolve cache misses);
#   2. submit the STP instance again and assert the presolve cache hit:
#      the result reports cache=hit with presolve_seconds=0 (the
#      reduction phase is absent from the second job's stats) and
#      /metrics shows serve_cache_hit >= 1;
#   3. stream 5 live SSE frames from a running job's /events endpoint
#      and validate each payload against the trace schema
#      (`ugtrace -frames`);
#   4. check the /metrics Prometheus grammar line by line;
#   5. SIGTERM the daemon while that job is still solving and assert a
#      graceful drain: exit status 0 and the drained-job report.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:6873
BASE="http://$ADDR"
LOG=/tmp/ug-serve-smoke.log
METRICS=/tmp/ug-serve-smoke.metrics
FRAMES=/tmp/ug-serve-smoke.frames
RESP=/tmp/ug-serve-smoke.resp

go build -o /tmp/ugserve-smoke ./cmd/ugserve
go build -o /tmp/ugtrace-serve ./cmd/ugtrace

/tmp/ugserve-smoke -listen "$ADDR" -max-concurrent 2 -workers 2 \
    -drain-grace 2s >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; wait "$SERVE_PID" 2>/dev/null || true' EXIT

ok=0
for _ in $(seq 1 50); do
    if curl -sf "$BASE/statusz" -o /dev/null; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "serve-smoke: ugserve never answered /statusz" >&2
    cat "$LOG" >&2
    exit 1
fi

# submit POSTs a job spec and prints the assigned job ID.
submit() {
    curl -sf -X POST -H 'Content-Type: application/json' -d "$1" \
        "$BASE/v1/jobs" -o "$RESP" || {
        echo "serve-smoke: submit failed for $1" >&2
        cat "$RESP" >&2 || true
        exit 1
    }
    sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$RESP" | head -1
}

# wait_done polls a job until it reaches a terminal state (60s budget)
# and leaves the final status JSON in $RESP.
wait_done() {
    local id=$1
    for _ in $(seq 1 300); do
        curl -sf "$BASE/v1/jobs/$id" -o "$RESP"
        if grep -Eq '"state": "(done|failed|cancelled|deadline_exceeded)"' "$RESP"; then
            return 0
        fi
        sleep 0.2
    done
    echo "serve-smoke: job $id never finished:" >&2
    cat "$RESP" >&2
    exit 1
}

expect() {
    grep -q "$1" "$RESP" || {
        echo "serve-smoke: job response missing $1:" >&2
        cat "$RESP" >&2
        exit 1
    }
}

# --- 1. one STP job and one MISDP job, both fresh presolves ---------------
STP_SPEC='{"kind":"stp","instance":"cc3-4p","workers":2}'
STP1=$(submit "$STP_SPEC")
MISDP1=$(submit '{"kind":"misdp","family":"mkp","workers":2}')
[ -n "$STP1" ] && [ -n "$MISDP1" ] || {
    echo "serve-smoke: submissions returned no job IDs" >&2
    exit 1
}
wait_done "$STP1"
expect '"state": "done"'
expect '"status": "optimal"'
expect '"cache": "miss"'
wait_done "$MISDP1"
expect '"state": "done"'
expect '"status": "optimal"'
expect '"cache": "miss"'

# --- 2. duplicate STP submission must hit the presolve cache --------------
STP2=$(submit "$STP_SPEC")
wait_done "$STP2"
expect '"state": "done"'
expect '"cache": "hit"'
# A hit skips the reduction phase entirely: the second job's stats carry
# no presolve time.
expect '"presolve_seconds": 0,'

curl -sf "$BASE/metrics" -o "$METRICS"
grep -Eq '^serve_cache_hit [1-9]' "$METRICS" || {
    echo "serve-smoke: serve_cache_hit did not increment:" >&2
    grep '^serve_cache' "$METRICS" >&2 || true
    exit 1
}

# --- 3. /metrics must be grammar-valid Prometheus text exposition ---------
grep -q '^# TYPE go_goroutines gauge$' "$METRICS" || {
    echo "serve-smoke: /metrics missing the go_goroutines TYPE line" >&2
    exit 1
}
if BAD=$(grep -Ev '^#|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEInfNa-]+$' "$METRICS"); then
    echo "serve-smoke: malformed /metrics line(s):" >&2
    echo "$BAD" >&2
    exit 1
fi

# --- 4. live SSE frames from a running job's event stream -----------------
# hc6p solves for long enough to stream against and to still be running
# when the SIGTERM lands below.
SLOW=$(submit '{"kind":"stp","instance":"hc6p","workers":2}')
for _ in $(seq 1 100); do
    curl -sf "$BASE/v1/jobs/$SLOW" -o "$RESP"
    grep -q '"state": "running"' "$RESP" && break
    sleep 0.1
done
grep -q '"state": "running"' "$RESP" || {
    echo "serve-smoke: slow job never started running:" >&2
    cat "$RESP" >&2
    exit 1
}
# grep -m5 closes the pipe once it has its frames; curl reports that as
# a write error — the expected way to end the stream.
(curl -sN --max-time 20 "$BASE/v1/jobs/$SLOW/events?heartbeat=250ms" || true) \
    | grep -m5 '^data: ' >"$FRAMES" || true
if [ "$(wc -l <"$FRAMES")" -lt 5 ]; then
    echo "serve-smoke: fewer than 5 SSE frames from the job stream:" >&2
    cat "$FRAMES" >&2
    exit 1
fi
/tmp/ugtrace-serve -frames "$FRAMES" || {
    echo "serve-smoke: SSE frames failed schema validation" >&2
    cat "$FRAMES" >&2
    exit 1
}

# --- 5. SIGTERM during the active solve must drain gracefully -------------
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
    echo "serve-smoke: ugserve exited $rc after SIGTERM (want 0):" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q 'drained (1 running job' "$LOG" || {
    echo "serve-smoke: drain report missing from the log:" >&2
    cat "$LOG" >&2
    exit 1
}

echo "serve-smoke: ok (cache hit on duplicate, $(wc -l <"$FRAMES") SSE frames, graceful drain)"
