#!/usr/bin/env bash
# profile_smoke.sh — smoke test for the -pprof debug endpoint.
#
# Starts a deliberately slow solve with the debug server on a fixed
# loopback port, then (while the solver is working) fetches /statusz and
# a 1-second CPU profile from /debug/pprof/. Both must answer with
# non-empty bodies. The solve is bounded by -time so the background
# process always exits on its own; we also kill it on every exit path.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:6872
STATUSZ=/tmp/ug-profile-smoke.statusz
PROFILE=/tmp/ug-profile-smoke.pprof

go build -o /tmp/ugsteiner-prof ./cmd/ugsteiner

# hc7u runs for >10s even under the time limit, so the process is
# reliably still alive while the 1-second CPU profile is captured; the
# trap kills it as soon as the checks pass.
/tmp/ugsteiner-prof -instance hc7u -workers 2 -time 10 -pprof "$ADDR" \
    >/tmp/ug-profile-smoke.out 2>&1 &
SOLVE_PID=$!
trap 'kill "$SOLVE_PID" 2>/dev/null; wait "$SOLVE_PID" 2>/dev/null || true' EXIT

# The debug server binds before the solve starts, but give the process a
# short retry window to come up.
ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/statusz" -o "$STATUSZ"; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "profile-smoke: debug server never answered /statusz" >&2
    cat /tmp/ug-profile-smoke.out >&2
    exit 1
fi
grep -q uptime_seconds "$STATUSZ" || {
    echo "profile-smoke: /statusz missing uptime_seconds:" >&2
    cat "$STATUSZ" >&2
    exit 1
}
grep -q metric "$STATUSZ" || {
    echo "profile-smoke: /statusz missing the metrics table:" >&2
    cat "$STATUSZ" >&2
    exit 1
}

curl -sf "http://$ADDR/debug/pprof/profile?seconds=1" -o "$PROFILE"
if [ ! -s "$PROFILE" ]; then
    echo "profile-smoke: empty CPU profile" >&2
    exit 1
fi

echo "profile-smoke: ok (statusz $(wc -c <"$STATUSZ") bytes, profile $(wc -c <"$PROFILE") bytes)"
