#!/usr/bin/env bash
# profile_smoke.sh — smoke test for the live telemetry side-channel.
#
# Starts a deliberately slow solve with the debug server on a fixed
# loopback port, then (while the solver is working) checks every surface
# the -pprof flag exposes:
#
#   /statusz             human-readable metrics table
#   /debug/pprof/profile 1-second CPU profile
#   /metrics             Prometheus text exposition (grammar-checked)
#   /events              SSE stream (5 live frames, schema-validated
#                        with `ugtrace -frames`)
#
# The solve also runs with -watchdog armed, so the flag plumbing is
# exercised on a real run (a healthy solve must NOT fire it). The solve
# is bounded by -time so the background process always exits on its own;
# we also kill it on every exit path.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:6872
STATUSZ=/tmp/ug-profile-smoke.statusz
PROFILE=/tmp/ug-profile-smoke.pprof
METRICS=/tmp/ug-profile-smoke.metrics
FRAMES=/tmp/ug-profile-smoke.frames

go build -o /tmp/ugsteiner-prof ./cmd/ugsteiner
go build -o /tmp/ugtrace-prof ./cmd/ugtrace

# hc7u runs for >10s even under the time limit, so the process is
# reliably still alive while the 1-second CPU profile is captured; the
# trap kills it as soon as the checks pass.
/tmp/ugsteiner-prof -instance hc7u -workers 2 -time 10 -pprof "$ADDR" \
    -watchdog 30s >/tmp/ug-profile-smoke.out 2>&1 &
SOLVE_PID=$!
trap 'kill "$SOLVE_PID" 2>/dev/null; wait "$SOLVE_PID" 2>/dev/null || true' EXIT

# The debug server binds before the solve starts, but give the process a
# short retry window to come up.
ok=0
for _ in $(seq 1 50); do
    if curl -sf "http://$ADDR/statusz" -o "$STATUSZ"; then
        ok=1
        break
    fi
    sleep 0.2
done
if [ "$ok" != 1 ]; then
    echo "profile-smoke: debug server never answered /statusz" >&2
    cat /tmp/ug-profile-smoke.out >&2
    exit 1
fi
grep -q uptime_seconds "$STATUSZ" || {
    echo "profile-smoke: /statusz missing uptime_seconds:" >&2
    cat "$STATUSZ" >&2
    exit 1
}
grep -q metric "$STATUSZ" || {
    echo "profile-smoke: /statusz missing the metrics table:" >&2
    cat "$STATUSZ" >&2
    exit 1
}

# /metrics must serve Prometheus text exposition: TYPE comments for the
# process gauges, and no line that is neither a comment nor a sample in
# the legal  name{labels} value  shape (the same grammar the unit tests
# check line by line — this is the cheap end-to-end version).
curl -sf "http://$ADDR/metrics" -o "$METRICS"
grep -q '^# TYPE go_goroutines gauge$' "$METRICS" || {
    echo "profile-smoke: /metrics missing the go_goroutines TYPE line:" >&2
    cat "$METRICS" >&2
    exit 1
}
grep -q '^# TYPE ' "$METRICS" || {
    echo "profile-smoke: /metrics has no TYPE comments" >&2
    exit 1
}
if BAD=$(grep -Ev '^#|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+.eEInfNa-]+$' "$METRICS"); then
    echo "profile-smoke: malformed /metrics line(s):" >&2
    echo "$BAD" >&2
    exit 1
fi

# /events must stream well-formed SSE frames mid-solve: capture 5 data
# frames and validate each payload against the trace schema. grep -m5
# closes the pipe once it has its frames, which curl reports as a write
# error — that is the expected way to end the stream.
(curl -sN --max-time 15 "http://$ADDR/events?heartbeat=250ms" || true) \
    | grep -m5 '^data: ' >"$FRAMES" || true
if [ "$(wc -l <"$FRAMES")" -lt 5 ]; then
    echo "profile-smoke: fewer than 5 SSE frames from /events:" >&2
    cat "$FRAMES" >&2
    exit 1
fi
/tmp/ugtrace-prof -frames "$FRAMES" || {
    echo "profile-smoke: /events frames failed schema validation" >&2
    cat "$FRAMES" >&2
    exit 1
}

curl -sf "http://$ADDR/debug/pprof/profile?seconds=1" -o "$PROFILE"
if [ ! -s "$PROFILE" ]; then
    echo "profile-smoke: empty CPU profile" >&2
    exit 1
fi

echo "profile-smoke: ok (statusz $(wc -c <"$STATUSZ") bytes, metrics $(wc -c <"$METRICS") bytes, $(wc -l <"$FRAMES") SSE frames, profile $(wc -c <"$PROFILE") bytes)"
