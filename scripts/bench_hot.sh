#!/usr/bin/env bash
# bench_hot.sh — regenerate BENCH_hotpath.json, the hot-path allocation
# ledger that pairs with the hotalloc analyzer (ugolint -hot).
#
# Runs the allocation benchmarks (internal/scip, internal/lp,
# internal/ug/comm/net, internal/obs) twice — once in a detached git worktree at a
# baseline ref (default HEAD~1, override with $1) and once in the
# current tree — and writes the ns/op, B/op and allocs/op pairs side by
# side. A benchmark missing at the baseline (or an unresolvable
# baseline ref, e.g. a root commit) records "baseline": null.
#
#   scripts/bench_hot.sh            # compare working tree vs HEAD~1
#   scripts/bench_hot.sh v1.2.0     # compare vs a tag
#   BENCHTIME=5000x scripts/bench_hot.sh
#
# The committed BENCH_hotpath.json is the record of what the hotalloc
# fixes bought; CI regenerates it as a build artifact. allocs/op is the
# stable, machine-independent column — ns/op and B/op are informative
# but load-dependent.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_REF="${1:-HEAD~1}"
BENCHTIME="${BENCHTIME:-2000x}"
PKGS="./internal/scip ./internal/lp ./internal/ug/comm/net ./internal/obs"
BENCHES='^(BenchmarkProcessNode|BenchmarkSolveKnapsack|BenchmarkNodeHeap|BenchmarkLPResolve|BenchmarkFrameRoundTrip|BenchmarkRecorderEmit)$'
OUT="BENCH_hotpath.json"

# run_bench <dir> — emit "pkg name ns/op B/op allocs/op" per benchmark.
run_bench() {
    (cd "$1" && go test -run '^$' -bench "$BENCHES" -benchmem \
        -benchtime "$BENCHTIME" $PKGS 2>/dev/null) |
        awk '/^pkg:/ { pkg = $2 }
             $1 ~ /^Benchmark/ && $NF == "allocs/op" {
                 name = $1; sub(/-[0-9]+$/, "", name)
                 print pkg, name, $3, $5, $7
             }'
}

base_commit=""
base_out=""
if git rev-parse --quiet --verify "${BASE_REF}^{commit}" >/dev/null; then
    base_commit=$(git rev-parse "${BASE_REF}^{commit}")
    worktree=$(mktemp -d)
    trap 'git worktree remove --force "$worktree" 2>/dev/null || true' EXIT
    git worktree add --quiet --detach "$worktree" "$base_commit"
    echo "== baseline: $BASE_REF ($base_commit)" >&2
    base_out=$(run_bench "$worktree")
else
    echo "== baseline ref $BASE_REF not found; recording baseline: null" >&2
fi

echo "== current tree" >&2
cur_out=$(run_bench .)
if [ -z "$cur_out" ]; then
    echo "bench_hot: no benchmark output from the current tree" >&2
    exit 1
fi

awk -v baseref="$BASE_REF" -v basecommit="$base_commit" \
    -v curcommit="$(git rev-parse HEAD)" '
NR == FNR { if (NF == 5) base[$1 " " $2] = $3 " " $4 " " $5; next }
NF == 5 { cur[++n] = $0 }
END {
    printf "{\n"
    printf "  \"baseline_ref\": \"%s\",\n", baseref
    printf "  \"baseline_commit\": \"%s\",\n", basecommit
    printf "  \"commit\": \"%s\",\n", curcommit
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        split(cur[i], f, " ")
        key = f[1] " " f[2]
        printf "    {\"package\": \"%s\", \"name\": \"%s\",\n", f[1], f[2]
        if (key in base) {
            split(base[key], b, " ")
            printf "     \"baseline\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s},\n", b[1], b[2], b[3]
        } else {
            printf "     \"baseline\": null,\n"
        }
        printf "     \"current\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}}%s\n", f[3], f[4], f[5], (i < n ? "," : "")
    }
    printf "  ]\n}\n"
}' <(printf '%s\n' "$base_out") <(printf '%s\n' "$cur_out") >"$OUT"

echo "== wrote $OUT" >&2
