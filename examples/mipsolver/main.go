// MIP example: the FiberSCIP analogue. A plain mixed-integer program —
// a generalized assignment problem — is solved by the scip framework
// sequentially and then in parallel through UG with both communicators:
// shared-memory channels (ug[SCIP,C++11]-style) and the gob-serialized
// layer (ug[SCIP,MPI]-style), demonstrating that the base solver is
// parallelized without any problem-specific glue.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/scip"
	"repro/internal/ug"
	"repro/internal/ug/comm"
)

// buildGAP creates a generalized assignment problem: assign jobs to
// machines minimizing cost under machine capacities.
func buildGAP(jobs, machines int, seed int64) *scip.Prob {
	rng := rand.New(rand.NewSource(seed))
	p := &scip.Prob{Name: "gap", IntegralObj: true}
	x := make([][]int, jobs)
	for j := 0; j < jobs; j++ {
		x[j] = make([]int, machines)
		for m := 0; m < machines; m++ {
			cost := float64(1 + rng.Intn(20))
			x[j][m] = p.AddVar(fmt.Sprintf("x_%d_%d", j, m), 0, 1, cost, scip.Binary)
		}
	}
	// Every job on exactly one machine.
	for j := 0; j < jobs; j++ {
		var coefs []lp.Nonzero
		for m := 0; m < machines; m++ {
			coefs = append(coefs, lp.Nonzero{Col: x[j][m], Val: 1})
		}
		p.AddRow(fmt.Sprintf("assign_%d", j), lp.EQ, 1, coefs)
	}
	// Machine capacities.
	for m := 0; m < machines; m++ {
		var coefs []lp.Nonzero
		var total float64
		for j := 0; j < jobs; j++ {
			w := float64(1 + rng.Intn(9))
			total += w
			coefs = append(coefs, lp.Nonzero{Col: x[j][m], Val: w})
		}
		p.AddRow(fmt.Sprintf("cap_%d", m), lp.LE, total/float64(machines)+6, coefs)
	}
	return p
}

func main() {
	prob := buildGAP(14, 4, 7)

	start := time.Now()
	seq := scip.NewSolver(prob, scip.DefaultSettings(), nil)
	st := seq.Solve()
	fmt.Printf("sequential:        status=%v cost=%g nodes=%d in %.2fs\n",
		st, seq.Incumbent().Obj, seq.Stats.Nodes, time.Since(start).Seconds())

	for _, mode := range []string{"channels (FiberSCIP-style)", "gob/MPI (ParaSCIP-style)"} {
		cfg := ug.Config{Workers: 4}
		if mode[0] == 'g' {
			cfg.Comm = comm.NewGobComm(5)
		}
		start = time.Now()
		res, _, err := core.SolveParallel(core.App{Name: "gap", Data: prob}, cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("parallel %-24s optimal=%v cost=%g nodes=%d transferred=%d in %.2fs\n",
			mode+":", res.Optimal, res.Obj, res.Stats.TotalNodes,
			res.Stats.Dispatched, time.Since(start).Seconds())
	}
}
