// Quickstart: build a small mixed-integer program directly against the
// scip framework's public API, solve it sequentially, then solve the
// same model in parallel through UG with two ParaSolvers — the minimal
// end-to-end tour of the stack.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/internal/scip"
	"repro/internal/ug"
)

func main() {
	// A knapsack: max 10x1 + 13x2 + 7x3 + 8x4 + 2x5
	//             s.t. 5x1 + 6x2 + 3x3 + 4x4 + x5 ≤ 10, x binary.
	// (the framework minimizes, so values enter negated)
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{5, 6, 3, 4, 1}
	prob := &scip.Prob{Name: "quickstart-knapsack", IntegralObj: true}
	var coefs []lp.Nonzero
	for i := range values {
		j := prob.AddVar(fmt.Sprintf("x%d", i+1), 0, 1, -values[i], scip.Binary)
		coefs = append(coefs, lp.Nonzero{Col: j, Val: weights[i]})
	}
	prob.AddRow("capacity", lp.LE, 10, coefs)

	// 1. Sequential solve with the plugin-based B&B framework.
	solver := scip.NewSolver(prob, scip.DefaultSettings(), nil)
	status := solver.Solve()
	fmt.Printf("sequential: status=%v value=%g nodes=%d\n",
		status, -solver.Incumbent().Obj, solver.Stats.Nodes)

	// 2. The same model through UG — this is all the "glue" a plain MIP
	// needs (problem-specific solvers register plugins, see the steiner
	// and misdp examples).
	res, _, err := core.SolveParallel(core.App{Name: "quickstart", Data: prob},
		ug.Config{Workers: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("parallel:   optimal=%v value=%g workers-max-active=%d\n",
		res.Optimal, -res.Obj, res.Stats.MaxActive)
	fmt.Printf("chosen items: ")
	sol := decode(res)
	for i := range values {
		if sol[i] > 0.5 {
			fmt.Printf("x%d ", i+1)
		}
	}
	fmt.Println()
}

// decode unpacks the UG solution payload back into variable values.
func decode(res *ug.Result) []float64 {
	s, err := scip.DecodeSol(res.Sol.Payload)
	if err != nil {
		panic(err)
	}
	return s.X
}
