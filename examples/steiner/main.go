// Steiner example: solve a PUC-family instance with ug[SCIP-Jack,*],
// demonstrating the two phenomena the paper's Tables 2 and 3 study —
// checkpoint/restart (only primitive nodes are persisted) and restarting
// with a known solution. The run is deliberately time-limited so the
// checkpoint machinery engages, then restarted to completion.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
	"repro/internal/ug"
)

func main() {
	inst := puc.Named("cc3-5u")
	fmt.Printf("instance %s: %d vertices, %d edges, %d terminals\n",
		inst.Name, inst.G.AliveVertices(), inst.G.AliveEdges(), inst.NumTerminals())

	dir, err := os.MkdirTemp("", "ugsteiner")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "run.ckpt")

	// Run 1: tight time limit; the coordinator checkpoints primitive nodes.
	res1, f1, err := core.SolveParallel(steiner.NewApp(inst.Clone()), ug.Config{
		Workers:         4,
		TimeLimit:       0.5,
		CheckpointPath:  ckpt,
		CheckpointEvery: 0.1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("run 1: optimal=%v primal=%.0f dual=%.0f openAtEnd=%d\n",
		res1.Optimal, res1.Stats.FinalPrimal+f1.ObjOffset(),
		res1.Stats.FinalDual+f1.ObjOffset(), res1.Stats.OpenAtEnd)

	if res1.Optimal {
		fmt.Printf("solved within the first run: %.0f\n", res1.Obj+f1.ObjOffset())
		return
	}
	ck, err := ug.LoadCheckpointInfo(ckpt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint holds %d primitive nodes (of %d open at shutdown)\n",
		len(ck.Pool), res1.Stats.OpenAtEnd)

	// Run 2: restart from the checkpoint and finish.
	res2, f2, err := core.SolveParallel(steiner.NewApp(inst.Clone()), ug.Config{
		Workers:     4,
		RestartFrom: ckpt,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("run 2 (restarted): optimal=%v objective=%.0f nodes=%d\n",
		res2.Optimal, res2.Obj+f2.ObjOffset(), res2.Stats.TotalNodes)
}
