// MISDP example: the racing LP/SDP hybrid of ug[SCIP-SDP,*]. A truss
// topology design instance is solved three ways — sequential SDP-based
// branch and bound, sequential LP-based cutting planes, and the parallel
// racing hybrid that lets the better approach win (the mechanism behind
// the paper's Figure 1).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/scip"
	"repro/internal/ug"
)

func main() {
	inst := testsets.TTD(4, 8, 2, 3)
	fmt.Printf("instance %s: %d integer bar-area variables, block order %d\n",
		inst.Name, inst.M, inst.Blocks[0].N)

	// Sequential, SDP relaxation at every node (SCIP-SDP default).
	s1, st1, _ := core.SolveSequential(misdp.NewApp(inst, 4), misdp.SDPSettings())
	fmt.Printf("sequential SDP mode: status=%v volume=%.4g nodes=%d\n",
		st1, incObj(s1), s1.Stats.Nodes)

	// Sequential, eigenvector-cut LP approximation.
	s2, st2, _ := core.SolveSequential(misdp.NewApp(inst, 4), misdp.LPSettings())
	fmt.Printf("sequential LP mode:  status=%v volume=%.4g nodes=%d cuts=%d\n",
		st2, incObj(s2), s2.Stats.Nodes, s2.Stats.CutsAdded)

	// Parallel racing hybrid: half the ParaSolvers race SDP settings,
	// half LP settings; the winner's tree is kept.
	res, _, err := core.SolveParallel(misdp.NewApp(inst, 8), ug.Config{
		Workers:    4,
		RampUp:     ug.RampUpRacing,
		RacingTime: 0.2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("racing hybrid:       optimal=%v volume=%.4g winner=%q solvedInRacing=%v\n",
		res.Optimal, res.Obj, res.Stats.RacingWinnerName, res.Stats.SolvedInRacing)
}

// incObj reports the minimized truss volume (the model maximizes the
// negated volume, and scip minimizes its negation again).
func incObj(s *scip.Solver) float64 {
	if s.Incumbent() == nil {
		return 0
	}
	return s.Incumbent().Obj
}
